//! The unified list-scheduling pipeline.
//!
//! FTSA, MC-FTSA and FTBAR are all instances of one loop — *select a
//! free task, pick `ε + 1` processors, place replicas, refresh
//! successors* — differing only along three orthogonal axes:
//!
//! | axis | options | paper origin |
//! |------|---------|--------------|
//! | [`PriorityAxis`] | criticalness `tℓ + bℓ` / static `bℓ` / schedule pressure σ | FTSA §4.1 vs FTBAR |
//! | [`PlacementAxis`] | `ε+1` best-finish (eq. 1) / minimize-start-time (± duplication) | FTSA vs Ahmad–Kwok MST |
//! | [`CommAxis`] | all-to-all / robust one-to-one matching | FTSA vs MC-FTSA §4.2 |
//!
//! A [`ListScheduler`] is one point in that 3×2×2+ grid; the public
//! [`Algorithm`](crate::Algorithm) variants are named configurations
//! (see [`Algorithm::scheduler`](crate::Algorithm::scheduler)), and new
//! cross-combinations — pressure-driven FTSA, FTBAR with matched
//! communications — are one-liners rather than a fourth copy of the
//! loop.
//!
//! # Zero-allocation steady state
//!
//! Every buffer the loop touches lives in a
//! [`ScheduleWorkspace`](crate::workspace::ScheduleWorkspace):
//! [`ListScheduler::run_into`] resets and refills it in place, so
//! repeated scheduling (pressure sweeps, bicriteria searches, experiment
//! grids) allocates nothing after the first run — see the workspace
//! module docs for the reuse contract. [`ListScheduler::run`] is the
//! convenience form that builds a throwaway workspace.
//!
//! # Registering a new policy
//!
//! 1. Add a variant to the relevant axis enum below.
//! 2. Implement it in the *one* `match` that consumes the axis
//!    (`select_next` for priorities, `choose_procs` for placements,
//!    `place_replicas` for comm policies) — the compiler's
//!    exhaustiveness check lists every site. Route any per-step storage
//!    through a workspace field, not a fresh allocation.
//! 3. Optionally name the combination: add an [`crate::Algorithm`]
//!    variant, wire `scheduler()` / `name()` / `FromStr`, and append it
//!    to [`crate::Algorithm::ALL`] so the CLI, the experiment axes and
//!    the property suite pick it up automatically.
//!
//! # Bit-identity contract
//!
//! For the four paper configurations this pipeline reproduces the seed
//! implementations byte for byte (see `tests/golden.rs`): every
//! floating-point expression is evaluated in the same form and the RNG
//! is consulted in the same order. Treat any change to the loop
//! structure, the fold expressions in [`crate::engine`] or the RNG
//! discipline as a semantic change that must be justified against the
//! golden suite.
//!
//! Composition rule: [`CommAxis::Matched`] disables the duplication half
//! of [`PlacementAxis::MinStart`]. Matched schedules give every replica
//! a *unique* sender per predecessor (Proposition 4.3); minimize-start-
//! time duplication exploits all-to-all first-arrival semantics, and the
//! one-to-one structure of eq. (5) validation has no slot for extra
//! sender replicas.

use crate::engine::Engine;
use crate::error::ScheduleError;
use crate::mc_ftsa::Selector;
use crate::schedule::{CommSelection, Replica, Schedule};
use crate::workspace::ScheduleWorkspace;
use ftcollections::{select_smallest_into, DaryHeap, OrdF64};
use matching::{
    bottleneck_matching_into, greedy_matching_into, BipartiteGraph, BottleneckScratch,
    GreedyScratch,
};
use platform::Instance;
use rand::Rng;
use std::cmp::Reverse;
use taskgraph::TaskId;

/// How the next free task is selected (the `H(α)` of Section 4.1, or
/// FTBAR's most-urgent sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PriorityAxis {
    /// The paper's *criticalness* `tℓ(t) + bℓ(t)`: dynamic top level
    /// (refreshed as predecessors land) plus static bottom level.
    Criticalness,
    /// Static bottom level only (a HEFT-style upward rank): cheaper to
    /// maintain but blind to where predecessors actually landed.
    BottomLevel,
    /// FTBAR's *schedule pressure*: every step sweeps all free tasks and
    /// picks the pair maximizing `σ(t, P) = S(t, P) + s(t) − R(n−1)`
    /// over each task's best `ε + 1` processors. The sweep also yields
    /// the processor set, which [`PlacementAxis::MinStart`] reuses.
    Pressure,
}

/// How the `ε + 1` hosting processors are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementAxis {
    /// The `ε + 1` processors minimizing the eq. (1) candidate finish
    /// time (FTSA's rule).
    BestFinish,
    /// The `ε + 1` processors minimizing the start time; with
    /// `duplicate`, each placement first runs the Ahmad–Kwok
    /// minimize-start-time pass (FTBAR's rule), duplicating the
    /// arrival-critical parent when that strictly lowers the start.
    /// Under [`PriorityAxis::Pressure`] the processor set from the σ
    /// sweep is reused instead of being recomputed.
    MinStart {
        /// Run the minimize-start-time duplication pass.
        duplicate: bool,
    },
}

/// How replica-to-replica communications are orchestrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommAxis {
    /// Every source replica sends to every destination replica; start
    /// times follow the optimistic/pessimistic folds of eqs. (1)/(3).
    AllToAll,
    /// MC-FTSA's robust one-to-one matching per precedence edge
    /// (Section 4.2): `e(ε+1)` messages, deterministic per-replica
    /// times (the two timelines coincide).
    Matched(Selector),
}

/// One configuration of the unified pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListScheduler {
    /// Task-selection policy.
    pub priority: PriorityAxis,
    /// Processor-selection / duplication policy.
    pub placement: PlacementAxis,
    /// Communication policy.
    pub comm: CommAxis,
}

/// Task-selection state operating on workspace buffers: the heap-backed
/// `α` of FTSA, or FTBAR's free list swept under the pressure objective.
enum SelKind {
    /// Priority-ranked free list `α`; the key is `(priority, random
    /// tie-break)`, so the heap head is exactly the paper's `H(α)`.
    Ranked {
        /// Whether the priority is `tℓ + bℓ` (true) or `bℓ` alone.
        dynamic: bool,
    },
    /// FTBAR's sweep; selection scans all free tasks each step.
    Pressure {
        /// Current schedule length `R(n−1)`.
        r_len: f64,
    },
}

impl ListScheduler {
    /// Builds a pipeline configuration.
    pub fn new(priority: PriorityAxis, placement: PlacementAxis, comm: CommAxis) -> Self {
        ListScheduler {
            priority,
            placement,
            comm,
        }
    }

    /// Schedules `inst` tolerating `epsilon` fail-stop failures. `rng`
    /// drives random tie-breaking only.
    ///
    /// Builds a throwaway [`ScheduleWorkspace`]; batch callers should
    /// hold one and use [`ListScheduler::run_into`] instead.
    pub fn run(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
    ) -> Result<Schedule, ScheduleError> {
        self.run_with_deadlines(inst, epsilon, rng, None)
    }

    /// [`ListScheduler::run`] reusing the caller's workspace: after the
    /// first call on a given instance shape, scheduling performs **no**
    /// heap allocation — all configurations, both matched-communication
    /// selectors included. The schedule stays owned by the workspace —
    /// clone it to keep it past the next run.
    pub fn run_into<'w>(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
        ws: &'w mut ScheduleWorkspace,
    ) -> Result<&'w Schedule, ScheduleError> {
        self.run_with_deadlines_into(inst, epsilon, rng, None, None, ws)?;
        Ok(&ws.sched)
    }

    /// [`ListScheduler::run_into`] on a *pre-occupied* platform: the
    /// eq. (1)/(3) placement queries start from `occ`'s per-processor
    /// release floors instead of time 0, so replica times come out in
    /// the stream's absolute clock. An empty timeline is bit-identical
    /// to [`ListScheduler::run_into`] (the golden suite's conservation
    /// contract). The produced schedule is *not* folded back into `occ`
    /// — callers decide which replicas actually occupy the platform.
    pub fn run_onto<'w>(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
        occ: &platform::OccupancyTimeline,
        ws: &'w mut ScheduleWorkspace,
    ) -> Result<&'w Schedule, ScheduleError> {
        self.run_with_deadlines_into(inst, epsilon, rng, None, Some(occ.floors()), ws)?;
        Ok(&ws.sched)
    }

    /// [`ListScheduler::run`] with the Section 4.3 per-task deadline
    /// check: the run aborts with [`ScheduleError::DeadlineViolated`] as
    /// soon as a selected task cannot finish by its deadline on its
    /// chosen processors.
    pub(crate) fn run_with_deadlines(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
        deadlines: Option<&[f64]>,
    ) -> Result<Schedule, ScheduleError> {
        let mut ws = ScheduleWorkspace::new();
        self.run_with_deadlines_into(inst, epsilon, rng, deadlines, None, &mut ws)?;
        Ok(ws.take_schedule())
    }

    /// The workspace-reusing core: one loop, three axes, no allocation
    /// in the steady state. `floors` (when `Some`) seeds the
    /// per-processor ready times from a persistent occupancy state;
    /// `None` is the historical empty-platform run.
    pub(crate) fn run_with_deadlines_into(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
        deadlines: Option<&[f64]>,
        floors: Option<&[f64]>,
        ws: &mut ScheduleWorkspace,
    ) -> Result<(), ScheduleError> {
        let m = inst.num_procs();
        if epsilon + 1 > m {
            return Err(ScheduleError::NotEnoughProcessors { epsilon, procs: m });
        }
        let dag = &inst.dag;
        let replicas = epsilon + 1;

        ws.prepare(inst, epsilon, floors);

        // Recycle the previous run's matched table: clearing the inner
        // vectors keeps their capacity, so MC-FTSA's steady state stays
        // allocation-free.
        let mut comm_tbl: Option<Vec<Vec<(usize, usize)>>> = match self.comm {
            CommAxis::AllToAll => None,
            CommAxis::Matched(_) => {
                let tbl = match std::mem::replace(&mut ws.sched.comm, CommSelection::AllToAll) {
                    CommSelection::Matched(mut t) => {
                        for inner in &mut t {
                            inner.clear();
                        }
                        t.resize_with(dag.num_edges(), Vec::new);
                        t
                    }
                    CommSelection::AllToAll => vec![Vec::new(); dag.num_edges()],
                };
                debug_assert_eq!(tbl.len(), dag.num_edges());
                debug_assert!(tbl.iter().all(Vec::is_empty));
                Some(tbl)
            }
        };

        let ScheduleWorkspace {
            sched,
            ready_lb,
            ready_ub,
            arrive_lb,
            bl,
            waiting_preds,
            alpha,
            tl,
            free,
            token,
            row,
            chosen,
            sweep,
            procs,
            arrival,
            senders,
            graph,
            forced,
            pairs,
            greedy,
            bottleneck,
            ..
        } = ws;

        // Seed the free list with the entry tasks (consuming the RNG in
        // entry order, exactly as the seed implementations did).
        let mut sel = match self.priority {
            PriorityAxis::Criticalness | PriorityAxis::BottomLevel => {
                for &t in dag.entries() {
                    alpha.push(t.index(), Reverse((OrdF64::new(bl[t.index()]), rng.gen())));
                }
                SelKind::Ranked {
                    dynamic: matches!(self.priority, PriorityAxis::Criticalness),
                }
            }
            PriorityAxis::Pressure => {
                free.extend_from_slice(dag.entries());
                for &t in dag.entries() {
                    token[t.index()] = rng.gen();
                }
                SelKind::Pressure { r_len: 0.0 }
            }
        };

        let mut eng = Engine::new(inst, sched, ready_lb, ready_ub, arrive_lb);

        while let Some((t, suggested)) = select_next(
            &mut sel, &eng, alpha, free, token, bl, replicas, row, chosen, sweep,
        ) {
            // Processor set hosting t's primary replicas, as
            // `(processor, selection score)` pairs in `chosen` — the
            // score is the eq. (1) candidate finish under BestFinish and
            // the earliest start (or σ-sweep value) under MinStart.
            match self.placement {
                PlacementAxis::BestFinish => eng.best_procs_into(t, replicas, row, chosen),
                PlacementAxis::MinStart { .. } => {
                    if !suggested {
                        // The σ sweep (when present) already ordered the
                        // processors by start time; otherwise compute.
                        eng.arrival_row_lb(t, row);
                        select_smallest_into(m, replicas, |j| row[j].max(eng.ready_lb[j]), chosen);
                    }
                }
            }
            procs.clear();
            procs.extend(chosen.iter().map(|&(j, _)| j));

            // Section 4.3 feasibility: the worst guaranteed finish among
            // the selected processors must meet the task's deadline.
            // Best-finish placements already scored each processor with
            // its eq. (1) finish; other placements score by start time,
            // so the finish is derived on demand.
            if let Some(d) = deadlines {
                let worst = chosen
                    .iter()
                    .map(|&(j, score)| match self.placement {
                        PlacementAxis::BestFinish => score,
                        PlacementAxis::MinStart { .. } => eng.finish_candidate_lb(t, j),
                    })
                    .fold(f64::NEG_INFINITY, f64::max);
                if worst > d[t.index()] + 1e-9 {
                    return Err(ScheduleError::DeadlineViolated {
                        task: t,
                        deadline: d[t.index()],
                        finish: worst,
                    });
                }
            }

            // Place the replicas under the comm policy.
            match self.comm {
                CommAxis::AllToAll => {
                    let duplicate =
                        matches!(self.placement, PlacementAxis::MinStart { duplicate: true });
                    for &j in procs.iter() {
                        if duplicate {
                            try_duplicate_critical_parent(&mut eng, t, j);
                        }
                        eng.place(t, j);
                    }
                }
                CommAxis::Matched(selector) => place_matched(
                    &mut eng,
                    t,
                    procs,
                    replicas,
                    selector,
                    comm_tbl.as_mut().expect("matched comm allocates its table"),
                    arrival,
                    senders,
                    graph,
                    forced,
                    pairs,
                    greedy,
                    bottleneck,
                ),
            }
            eng.sched.schedule_order.push(t);

            // Refresh successor priorities and release the ones that
            // became free.
            after_schedule(
                &mut sel,
                t,
                &eng,
                alpha,
                free,
                token,
                tl,
                bl,
                waiting_preds,
                rng,
            );
        }

        sched.comm = match comm_tbl {
            None => CommSelection::AllToAll,
            Some(tbl) => CommSelection::Matched(tbl),
        };
        Ok(())
    }
}

/// Pops the next task. For the pressure sweep, `chosen` is additionally
/// filled with the selected processor set (ordered by σ, i.e. by start
/// time) and the returned flag is `true`.
#[allow(clippy::too_many_arguments)]
fn select_next(
    sel: &mut SelKind,
    eng: &Engine<'_>,
    alpha: &mut DaryHeap<crate::workspace::AlphaKey, 4>,
    free: &mut Vec<TaskId>,
    token: &mut [u64],
    s_latest: &[f64],
    replicas: usize,
    row: &mut Vec<f64>,
    chosen: &mut Vec<(usize, f64)>,
    sweep: &mut Vec<(usize, f64)>,
) -> Option<(TaskId, bool)> {
    match sel {
        SelKind::Ranked { .. } => {
            let (ti, _) = alpha.pop()?;
            Some((TaskId(ti as u32), false))
        }
        SelKind::Pressure { r_len } => {
            if free.is_empty() {
                return None;
            }
            let m = eng.inst.num_procs();
            // Most urgent (task, processor-set) pair: the free task
            // whose best-σ set has the largest `ε+1`-th pressure, ties
            // broken by the larger random token. The winning set is
            // kept in `chosen` by swapping the two scratch buffers.
            let mut best: Option<(usize, f64, u64)> = None;
            for (fi, &t) in free.iter().enumerate() {
                eng.arrival_row_lb(t, row);
                select_smallest_into(
                    m,
                    replicas,
                    |j| {
                        let start = row[j].max(eng.ready_lb[j]);
                        start + s_latest[t.index()] - *r_len
                    },
                    sweep,
                );
                let urgency = sweep.last().expect("replicas >= 1").1;
                let tok = token[t.index()];
                let better = match &best {
                    None => true,
                    Some((_, u, bt)) => urgency > *u || (urgency == *u && tok > *bt),
                };
                if better {
                    best = Some((fi, urgency, tok));
                    std::mem::swap(chosen, sweep);
                }
            }
            let (fi, _, _) = best.expect("free list nonempty");
            Some((free.swap_remove(fi), true))
        }
    }
}

/// Refreshes successor priorities after `t` was placed and releases the
/// successors that became free.
#[allow(clippy::too_many_arguments)]
fn after_schedule(
    sel: &mut SelKind,
    t: TaskId,
    eng: &Engine<'_>,
    alpha: &mut DaryHeap<crate::workspace::AlphaKey, 4>,
    free: &mut Vec<TaskId>,
    token: &mut [u64],
    tl: &mut [f64],
    bl: &[f64],
    waiting_preds: &mut [u32],
    rng: &mut impl Rng,
) {
    let inst = eng.inst;
    let dag = &inst.dag;
    match sel {
        SelKind::Ranked { dynamic } => {
            // Refresh successor top levels:
            //   tℓ(s) ≥ min_k { F(tᵏ) + V(t, s) · max_j d(P(tᵏ), P_j) }
            // (worst-case outgoing delay since s's processor is unknown
            // yet; min over replicas matches equation (1)'s optimistic
            // semantics).
            for &(s, eid) in dag.succs(t) {
                let vol = dag.volume(eid);
                let cand = eng
                    .sched
                    .replicas_of(t)
                    .iter()
                    .map(|r| r.finish_lb + vol * inst.platform.max_delay_from(r.proc.index()))
                    .fold(f64::INFINITY, f64::min);
                let si = s.index();
                tl[si] = tl[si].max(cand);
                waiting_preds[si] -= 1;
                if waiting_preds[si] == 0 {
                    let priority = if *dynamic { tl[si] + bl[si] } else { bl[si] };
                    alpha.push(si, Reverse((OrdF64::new(priority), rng.gen())));
                }
            }
        }
        SelKind::Pressure { r_len } => {
            *r_len = eng.current_length_lb();
            for &(s, _) in dag.succs(t) {
                let si = s.index();
                waiting_preds[si] -= 1;
                if waiting_preds[si] == 0 {
                    token[si] = rng.gen();
                    free.push(s);
                }
            }
        }
    }
}

/// Ahmad–Kwok Minimize-Start-Time (one level): if the start of `t` on
/// `j` is dominated by the arrival from one parent, and duplicating that
/// parent onto `j` would strictly lower the start, insert the duplicate.
fn try_duplicate_critical_parent(eng: &mut Engine<'_>, t: TaskId, j: usize) {
    let dag = &eng.inst.dag;

    let preds = dag.preds(t);
    if preds.is_empty() {
        return;
    }
    // Arrival per parent (the cached optimistic edge fold) and the
    // critical one.
    let mut crit: Option<(TaskId, f64)> = None;
    let mut second = 0.0f64;
    for &(p, eid) in preds {
        let a = eng.edge_arrival_lb(eid, j);
        match crit {
            Some((_, ca)) if a > ca => {
                second = second.max(ca);
                crit = Some((p, a));
            }
            Some(_) => second = second.max(a),
            None => crit = Some((p, a)),
        }
    }
    let (p, crit_arrival) = crit.expect("nonempty preds");
    let old_start = crit_arrival.max(eng.ready_lb[j]);
    if old_start <= eng.ready_lb[j] + 1e-12 {
        return; // the processor, not the parent, is the constraint
    }
    // Already collocated? Then the arrival is already communication-free.
    if eng.sched.replicas_of(p).iter().any(|r| r.proc.index() == j) {
        return;
    }
    // Cost of running a duplicate of p on j, right now.
    let dup_finish = eng.inst.exec.time(p.index(), j) + eng.arrival_lb(p, j).max(eng.ready_lb[j]);
    let new_start = dup_finish.max(second);
    if new_start + 1e-12 < old_start {
        eng.place(p, j);
    }
}

/// MC-FTSA's placement step (Section 4.2): per predecessor, select a
/// robust one-to-one communication set between the predecessor's
/// replicas and the destination processors, then place each replica
/// with its deterministic matched times (the two timelines coincide).
/// All scratch comes from the workspace; with either selector the step
/// performs no allocation in steady state.
#[allow(clippy::too_many_arguments)]
fn place_matched(
    eng: &mut Engine<'_>,
    t: TaskId,
    procs: &[usize],
    replicas: usize,
    selector: Selector,
    comm: &mut [Vec<(usize, usize)>],
    arrival: &mut Vec<f64>,
    senders: &mut Vec<Replica>,
    g: &mut BipartiteGraph,
    forced: &mut Vec<(usize, usize)>,
    pairs: &mut Vec<(usize, usize)>,
    greedy: &mut GreedyScratch,
    bottleneck: &mut BottleneckScratch,
) {
    let inst = eng.inst;
    let dag = &inst.dag;

    // Per destination replica r (running on procs[r]), the arrival time
    // of each predecessor's data through the selected matching.
    arrival.clear();
    arrival.resize(replicas, 0.0);

    for &(p, eid) in dag.preds(t) {
        let vol = dag.volume(eid);
        senders.clear();
        senders.extend_from_slice(eng.sched.replicas_of(p));
        // Build the bipartite graph of Section 4.2.
        g.reset(senders.len(), replicas);
        forced.clear();
        for (k, srep) in senders.iter().enumerate() {
            let sp = srep.proc.index();
            if let Some(r) = procs.iter().position(|&q| q == sp) {
                // Shared processor: the only outgoing edge is the
                // internal one (weight = completion of t on that
                // processor if t' were its only predecessor).
                let w = (srep.finish_lb).max(eng.ready_lb[sp]) + inst.exec.time(t.index(), sp);
                g.add_edge(k, r, w);
                forced.push((k, r));
            } else {
                for (r, &q) in procs.iter().enumerate() {
                    let w = (srep.finish_lb + vol * inst.platform.delay(sp, q))
                        .max(eng.ready_lb[q])
                        + inst.exec.time(t.index(), q);
                    g.add_edge(k, r, w);
                }
            }
        }
        match selector {
            Selector::Greedy => {
                let ok = greedy_matching_into(g, forced, greedy, pairs);
                assert!(
                    ok,
                    "matched-comm bipartite graphs always admit a left-perfect matching"
                );
            }
            Selector::Bottleneck => {
                let ok = bottleneck_matching_into(g, forced, bottleneck, pairs);
                assert!(
                    ok,
                    "matched-comm bipartite graphs always admit a left-perfect matching"
                );
            }
        }

        for &(k, r) in pairs.iter() {
            let srep = &senders[k];
            let q = procs[r];
            let a = srep.finish_lb + vol * inst.platform.delay(srep.proc.index(), q);
            arrival[r] = arrival[r].max(a);
            comm[eid.index()].push((k, r));
        }
    }

    // Place the replicas with their deterministic matched times.
    for (r, &j) in procs.iter().enumerate() {
        let e = inst.exec.time(t.index(), j);
        let start = arrival[r].max(eng.ready_lb[j]);
        eng.place_with_times(t, j, start, start + e, start, start + e);
    }
}
