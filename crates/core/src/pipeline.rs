//! The unified list-scheduling pipeline.
//!
//! FTSA, MC-FTSA and FTBAR are all instances of one loop — *select a
//! free task, pick `ε + 1` processors, place replicas, refresh
//! successors* — differing only along three orthogonal axes:
//!
//! | axis | options | paper origin |
//! |------|---------|--------------|
//! | [`PriorityAxis`] | criticalness `tℓ + bℓ` / static `bℓ` / schedule pressure σ | FTSA §4.1 vs FTBAR |
//! | [`PlacementAxis`] | `ε+1` best-finish (eq. 1) / minimize-start-time (± duplication) | FTSA vs Ahmad–Kwok MST |
//! | [`CommAxis`] | all-to-all / robust one-to-one matching | FTSA vs MC-FTSA §4.2 |
//!
//! A [`ListScheduler`] is one point in that 3×2×2+ grid; the public
//! [`Algorithm`](crate::Algorithm) variants are named configurations
//! (see [`Algorithm::scheduler`](crate::Algorithm::scheduler)), and new
//! cross-combinations — pressure-driven FTSA, FTBAR with matched
//! communications — are one-liners rather than a fourth copy of the
//! loop.
//!
//! # Registering a new policy
//!
//! 1. Add a variant to the relevant axis enum below.
//! 2. Implement it in the *one* `match` that consumes the axis
//!    (`select` for priorities, `choose_procs` for placements,
//!    `place_replicas` for comm policies) — the compiler's
//!    exhaustiveness check lists every site.
//! 3. Optionally name the combination: add an [`crate::Algorithm`]
//!    variant, wire `scheduler()` / `name()` / `FromStr`, and append it
//!    to [`crate::Algorithm::ALL`] so the CLI, the experiment axes and
//!    the property suite pick it up automatically.
//!
//! # Bit-identity contract
//!
//! For the four paper configurations this pipeline reproduces the seed
//! implementations byte for byte (see `tests/golden.rs`): every
//! floating-point expression is evaluated in the same form and the RNG
//! is consulted in the same order. Treat any change to the loop
//! structure, the fold expressions in [`crate::engine`] or the RNG
//! discipline as a semantic change that must be justified against the
//! golden suite.
//!
//! Composition rule: [`CommAxis::Matched`] disables the duplication half
//! of [`PlacementAxis::MinStart`]. Matched schedules give every replica
//! a *unique* sender per predecessor (Proposition 4.3); minimize-start-
//! time duplication exploits all-to-all first-arrival semantics, and the
//! one-to-one structure of eq. (5) validation has no slot for extra
//! sender replicas.

use crate::engine::Engine;
use crate::error::ScheduleError;
use crate::levels::{bottom_levels, AverageCosts};
use crate::mc_ftsa::Selector;
use crate::schedule::{CommSelection, Schedule};
use ftcollections::{select_smallest, DaryHeap, OrdF64};
use matching::{bottleneck_matching, greedy_matching, BipartiteGraph, Matching};
use platform::Instance;
use rand::Rng;
use std::cmp::Reverse;
use taskgraph::TaskId;

/// How the next free task is selected (the `H(α)` of Section 4.1, or
/// FTBAR's most-urgent sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PriorityAxis {
    /// The paper's *criticalness* `tℓ(t) + bℓ(t)`: dynamic top level
    /// (refreshed as predecessors land) plus static bottom level.
    Criticalness,
    /// Static bottom level only (a HEFT-style upward rank): cheaper to
    /// maintain but blind to where predecessors actually landed.
    BottomLevel,
    /// FTBAR's *schedule pressure*: every step sweeps all free tasks and
    /// picks the pair maximizing `σ(t, P) = S(t, P) + s(t) − R(n−1)`
    /// over each task's best `ε + 1` processors. The sweep also yields
    /// the processor set, which [`PlacementAxis::MinStart`] reuses.
    Pressure,
}

/// How the `ε + 1` hosting processors are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementAxis {
    /// The `ε + 1` processors minimizing the eq. (1) candidate finish
    /// time (FTSA's rule).
    BestFinish,
    /// The `ε + 1` processors minimizing the start time; with
    /// `duplicate`, each placement first runs the Ahmad–Kwok
    /// minimize-start-time pass (FTBAR's rule), duplicating the
    /// arrival-critical parent when that strictly lowers the start.
    /// Under [`PriorityAxis::Pressure`] the processor set from the σ
    /// sweep is reused instead of being recomputed.
    MinStart {
        /// Run the minimize-start-time duplication pass.
        duplicate: bool,
    },
}

/// How replica-to-replica communications are orchestrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommAxis {
    /// Every source replica sends to every destination replica; start
    /// times follow the optimistic/pessimistic folds of eqs. (1)/(3).
    AllToAll,
    /// MC-FTSA's robust one-to-one matching per precedence edge
    /// (Section 4.2): `e(ε+1)` messages, deterministic per-replica
    /// times (the two timelines coincide).
    Matched(Selector),
}

/// One configuration of the unified pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListScheduler {
    /// Task-selection policy.
    pub priority: PriorityAxis,
    /// Processor-selection / duplication policy.
    pub placement: PlacementAxis,
    /// Communication policy.
    pub comm: CommAxis,
}

impl ListScheduler {
    /// Builds a pipeline configuration.
    pub fn new(priority: PriorityAxis, placement: PlacementAxis, comm: CommAxis) -> Self {
        ListScheduler {
            priority,
            placement,
            comm,
        }
    }

    /// Schedules `inst` tolerating `epsilon` fail-stop failures. `rng`
    /// drives random tie-breaking only.
    pub fn run(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
    ) -> Result<Schedule, ScheduleError> {
        self.run_with_deadlines(inst, epsilon, rng, None)
    }

    /// [`ListScheduler::run`] with the Section 4.3 per-task deadline
    /// check: the run aborts with [`ScheduleError::DeadlineViolated`] as
    /// soon as a selected task cannot finish by its deadline on its
    /// chosen processors.
    pub(crate) fn run_with_deadlines(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
        deadlines: Option<&[f64]>,
    ) -> Result<Schedule, ScheduleError> {
        let m = inst.num_procs();
        if epsilon + 1 > m {
            return Err(ScheduleError::NotEnoughProcessors { epsilon, procs: m });
        }
        let dag = &inst.dag;
        let v = dag.num_tasks();
        let replicas = epsilon + 1;

        let avg = AverageCosts::new(inst);
        let bl = bottom_levels(inst, &avg);
        let mut waiting_preds: Vec<usize> =
            (0..v).map(|i| dag.in_degree(TaskId(i as u32))).collect();

        let mut sel = SelectState::init(self.priority, inst, &bl, rng);
        let mut eng = Engine::new(inst, epsilon);
        let mut comm_tbl: Option<Vec<Vec<(usize, usize)>>> = match self.comm {
            CommAxis::AllToAll => None,
            CommAxis::Matched(_) => Some(vec![Vec::new(); dag.num_edges()]),
        };

        while let Some((t, suggested)) = sel.select(&eng, &bl, replicas) {
            let chosen = self.choose_procs(&eng, t, replicas, suggested);
            let procs: Vec<usize> = chosen.iter().map(|&(j, _)| j).collect();

            // Section 4.3 feasibility: the worst guaranteed finish among
            // the selected processors must meet the task's deadline.
            // Best-finish placements already scored each processor with
            // its eq. (1) finish; other placements score by start time,
            // so the finish is derived on demand.
            if let Some(d) = deadlines {
                let worst = chosen
                    .iter()
                    .map(|&(j, score)| match self.placement {
                        PlacementAxis::BestFinish => score,
                        PlacementAxis::MinStart { .. } => eng.finish_candidate_lb(t, j),
                    })
                    .fold(f64::NEG_INFINITY, f64::max);
                if worst > d[t.index()] + 1e-9 {
                    return Err(ScheduleError::DeadlineViolated {
                        task: t,
                        deadline: d[t.index()],
                        finish: worst,
                    });
                }
            }

            self.place_replicas(&mut eng, t, &procs, replicas, comm_tbl.as_mut());
            eng.sched.schedule_order.push(t);
            sel.after_schedule(t, &eng, &bl, &mut waiting_preds, rng);
        }

        eng.sched.comm = match comm_tbl {
            None => CommSelection::AllToAll,
            Some(tbl) => CommSelection::Matched(tbl),
        };
        Ok(eng.sched)
    }

    /// The processor set hosting `t`'s primary replicas, as
    /// `(processor, selection score)` pairs — the score is the eq. (1)
    /// candidate finish under [`PlacementAxis::BestFinish`] and the
    /// earliest start (or σ-sweep value) under
    /// [`PlacementAxis::MinStart`].
    fn choose_procs(
        &self,
        eng: &Engine<'_>,
        t: TaskId,
        replicas: usize,
        suggested: Option<ScoredProcs>,
    ) -> ScoredProcs {
        match self.placement {
            PlacementAxis::BestFinish => eng.best_procs(t, replicas),
            PlacementAxis::MinStart { .. } => match suggested {
                // The σ sweep already ordered processors by start time.
                Some(procs) => procs,
                None => select_smallest(eng.inst.num_procs(), replicas, |j| {
                    eng.arrival_lb(t, j).max(eng.ready_lb[j])
                }),
            },
        }
    }

    /// Places `t`'s replicas on `procs` under the comm policy.
    fn place_replicas(
        &self,
        eng: &mut Engine<'_>,
        t: TaskId,
        procs: &[usize],
        replicas: usize,
        comm_tbl: Option<&mut Vec<Vec<(usize, usize)>>>,
    ) {
        match (self.comm, comm_tbl) {
            (CommAxis::AllToAll, _) => {
                let duplicate =
                    matches!(self.placement, PlacementAxis::MinStart { duplicate: true });
                for &j in procs {
                    if duplicate {
                        try_duplicate_critical_parent(eng, t, j);
                    }
                    eng.place(t, j);
                }
            }
            (CommAxis::Matched(selector), Some(tbl)) => {
                place_matched(eng, t, procs, replicas, selector, tbl);
            }
            (CommAxis::Matched(_), None) => unreachable!("matched comm allocates its table"),
        }
    }
}

/// `(processor, selection score)` pairs ordered by score — the output
/// of every processor-selection rule.
type ScoredProcs = Vec<(usize, f64)>;

/// Task-selection state: the heap-backed `α` of FTSA, or FTBAR's plain
/// free list swept under the pressure objective.
enum SelectState {
    /// Priority-ranked free list `α` on an indexed 4-ary max-heap; the
    /// key is `(priority, random tie-break)`, so the head is exactly the
    /// paper's `H(α)` with random tie-breaking.
    Ranked {
        alpha: DaryHeap<Reverse<(OrdF64, u64)>, 4>,
        /// Dynamic top levels `tℓ` (left at 0 under [`PriorityAxis::BottomLevel`]).
        tl: Vec<f64>,
        /// Whether the priority is `tℓ + bℓ` (true) or `bℓ` alone.
        dynamic: bool,
    },
    /// FTBAR's free list; selection sweeps all free tasks each step.
    Pressure {
        free: Vec<TaskId>,
        /// Random urgency tie-break tokens, drawn when a task frees up.
        token: Vec<u64>,
        /// Current schedule length `R(n−1)`.
        r_len: f64,
    },
}

impl SelectState {
    fn init(
        priority: PriorityAxis,
        inst: &Instance,
        bl: &[f64],
        rng: &mut impl Rng,
    ) -> SelectState {
        let dag = &inst.dag;
        let v = dag.num_tasks();
        match priority {
            PriorityAxis::Criticalness | PriorityAxis::BottomLevel => {
                let mut alpha = DaryHeap::new(v);
                for t in dag.entries() {
                    alpha.push(t.index(), Reverse((OrdF64::new(bl[t.index()]), rng.gen())));
                }
                SelectState::Ranked {
                    alpha,
                    tl: vec![0.0f64; v],
                    dynamic: matches!(priority, PriorityAxis::Criticalness),
                }
            }
            PriorityAxis::Pressure => {
                let free = dag.entries();
                let mut token = vec![0u64; v];
                for t in &free {
                    token[t.index()] = rng.gen();
                }
                SelectState::Pressure {
                    free,
                    token,
                    r_len: 0.0,
                }
            }
        }
    }

    /// Pops the next task; the pressure sweep also returns its processor
    /// set (ordered by σ, i.e. by start time).
    fn select(
        &mut self,
        eng: &Engine<'_>,
        s_latest: &[f64],
        replicas: usize,
    ) -> Option<(TaskId, Option<ScoredProcs>)> {
        match self {
            SelectState::Ranked { alpha, .. } => {
                let (ti, _) = alpha.pop()?;
                Some((TaskId(ti as u32), None))
            }
            SelectState::Pressure { free, token, r_len } => {
                if free.is_empty() {
                    return None;
                }
                let m = eng.inst.num_procs();
                // Most urgent (task, processor-set) pair: the free task
                // whose best-σ set has the largest `ε+1`-th pressure,
                // ties broken by the larger random token.
                let mut best: Option<(usize, ScoredProcs, f64, u64)> = None;
                for (fi, &t) in free.iter().enumerate() {
                    let sig = select_smallest(m, replicas, |j| {
                        let start = eng.arrival_lb(t, j).max(eng.ready_lb[j]);
                        start + s_latest[t.index()] - *r_len
                    });
                    let urgency = sig.last().expect("replicas >= 1").1;
                    let tok = token[t.index()];
                    let better = match &best {
                        None => true,
                        Some((_, _, u, bt)) => urgency > *u || (urgency == *u && tok > *bt),
                    };
                    if better {
                        best = Some((fi, sig, urgency, tok));
                    }
                }
                let (fi, procs, _, _) = best.expect("free list nonempty");
                Some((free.swap_remove(fi), Some(procs)))
            }
        }
    }

    /// Refreshes successor priorities after `t` was placed and releases
    /// the successors that became free.
    fn after_schedule(
        &mut self,
        t: TaskId,
        eng: &Engine<'_>,
        bl: &[f64],
        waiting_preds: &mut [usize],
        rng: &mut impl Rng,
    ) {
        let inst = eng.inst;
        let dag = &inst.dag;
        match self {
            SelectState::Ranked { alpha, tl, dynamic } => {
                // Refresh successor top levels:
                //   tℓ(s) ≥ min_k { F(tᵏ) + V(t, s) · max_j d(P(tᵏ), P_j) }
                // (worst-case outgoing delay since s's processor is unknown
                // yet; min over replicas matches equation (1)'s optimistic
                // semantics).
                for &(s, eid) in dag.succs(t) {
                    let vol = dag.volume(eid);
                    let cand = eng
                        .sched
                        .replicas_of(t)
                        .iter()
                        .map(|r| r.finish_lb + vol * inst.platform.max_delay_from(r.proc.index()))
                        .fold(f64::INFINITY, f64::min);
                    let si = s.index();
                    tl[si] = tl[si].max(cand);
                    waiting_preds[si] -= 1;
                    if waiting_preds[si] == 0 {
                        let priority = if *dynamic { tl[si] + bl[si] } else { bl[si] };
                        alpha.push(si, Reverse((OrdF64::new(priority), rng.gen())));
                    }
                }
            }
            SelectState::Pressure { free, token, r_len } => {
                *r_len = eng.current_length_lb();
                for &(s, _) in dag.succs(t) {
                    let si = s.index();
                    waiting_preds[si] -= 1;
                    if waiting_preds[si] == 0 {
                        token[si] = rng.gen();
                        free.push(s);
                    }
                }
            }
        }
    }
}

/// Ahmad–Kwok Minimize-Start-Time (one level): if the start of `t` on
/// `j` is dominated by the arrival from one parent, and duplicating that
/// parent onto `j` would strictly lower the start, insert the duplicate.
fn try_duplicate_critical_parent(eng: &mut Engine<'_>, t: TaskId, j: usize) {
    let dag = &eng.inst.dag;

    let preds = dag.preds(t);
    if preds.is_empty() {
        return;
    }
    // Arrival per parent (the cached optimistic edge fold) and the
    // critical one.
    let mut crit: Option<(TaskId, f64)> = None;
    let mut second = 0.0f64;
    for &(p, eid) in preds {
        let a = eng.edge_arrival_lb(eid, j);
        match crit {
            Some((_, ca)) if a > ca => {
                second = second.max(ca);
                crit = Some((p, a));
            }
            Some(_) => second = second.max(a),
            None => crit = Some((p, a)),
        }
    }
    let (p, crit_arrival) = crit.expect("nonempty preds");
    let old_start = crit_arrival.max(eng.ready_lb[j]);
    if old_start <= eng.ready_lb[j] + 1e-12 {
        return; // the processor, not the parent, is the constraint
    }
    // Already collocated? Then the arrival is already communication-free.
    if eng.sched.replicas_of(p).iter().any(|r| r.proc.index() == j) {
        return;
    }
    // Cost of running a duplicate of p on j, right now.
    let dup_finish = eng.inst.exec.time(p.index(), j) + eng.arrival_lb(p, j).max(eng.ready_lb[j]);
    let new_start = dup_finish.max(second);
    if new_start + 1e-12 < old_start {
        eng.place(p, j);
    }
}

/// MC-FTSA's placement step (Section 4.2): per predecessor, select a
/// robust one-to-one communication set between the predecessor's
/// replicas and the destination processors, then place each replica
/// with its deterministic matched times (the two timelines coincide).
fn place_matched(
    eng: &mut Engine<'_>,
    t: TaskId,
    procs: &[usize],
    replicas: usize,
    selector: Selector,
    comm: &mut [Vec<(usize, usize)>],
) {
    let inst = eng.inst;
    let dag = &inst.dag;

    // Per destination replica r (running on procs[r]), the arrival time
    // of each predecessor's data through the selected matching.
    let mut arrival = vec![0.0f64; replicas];

    for &(p, eid) in dag.preds(t) {
        let vol = dag.volume(eid);
        let senders = eng.sched.replicas_of(p).to_vec();
        // Build the bipartite graph of Section 4.2.
        let mut g = BipartiteGraph::new(senders.len(), replicas);
        let mut forced: Vec<(usize, usize)> = Vec::new();
        for (k, srep) in senders.iter().enumerate() {
            let sp = srep.proc.index();
            if let Some(r) = procs.iter().position(|&q| q == sp) {
                // Shared processor: the only outgoing edge is the
                // internal one (weight = completion of t on that
                // processor if t' were its only predecessor).
                let w = (srep.finish_lb).max(eng.ready_lb[sp]) + inst.exec.time(t.index(), sp);
                g.add_edge(k, r, w);
                forced.push((k, r));
            } else {
                for (r, &q) in procs.iter().enumerate() {
                    let w = (srep.finish_lb + vol * inst.platform.delay(sp, q))
                        .max(eng.ready_lb[q])
                        + inst.exec.time(t.index(), q);
                    g.add_edge(k, r, w);
                }
            }
        }
        let matching: Matching = match selector {
            Selector::Greedy => greedy_matching(&g, &forced),
            Selector::Bottleneck => bottleneck_matching(&g, &forced),
        }
        .expect("matched-comm bipartite graphs always admit a left-perfect matching");

        for &(k, r) in &matching.pairs {
            let srep = &senders[k];
            let q = procs[r];
            let a = srep.finish_lb + vol * inst.platform.delay(srep.proc.index(), q);
            arrival[r] = arrival[r].max(a);
            comm[eid.index()].push((k, r));
        }
    }

    // Place the replicas with their deterministic matched times.
    for (r, &j) in procs.iter().enumerate() {
        let e = inst.exec.time(t.index(), j);
        let start = arrival[r].max(eng.ready_lb[j]);
        eng.place_with_times(t, j, start, start + e, start, start + e);
    }
}
