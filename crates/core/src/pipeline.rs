//! The unified list-scheduling pipeline.
//!
//! FTSA, MC-FTSA and FTBAR are all instances of one loop — *select a
//! free task, pick `ε + 1` processors, place replicas, refresh
//! successors* — differing only along three orthogonal axes:
//!
//! | axis | options | paper origin |
//! |------|---------|--------------|
//! | [`PriorityAxis`] | criticalness `tℓ + bℓ` / static `bℓ` / schedule pressure σ | FTSA §4.1 vs FTBAR |
//! | [`PlacementAxis`] | `ε+1` best-finish (eq. 1) / minimize-start-time (± duplication) | FTSA vs Ahmad–Kwok MST |
//! | [`CommAxis`] | all-to-all / robust one-to-one matching | FTSA vs MC-FTSA §4.2 |
//!
//! A [`ListScheduler`] is one point in that 3×2×2+ grid; the public
//! [`Algorithm`](crate::Algorithm) variants are named configurations
//! (see [`Algorithm::scheduler`](crate::Algorithm::scheduler)), and new
//! cross-combinations — pressure-driven FTSA, FTBAR with matched
//! communications — are one-liners rather than a fourth copy of the
//! loop.
//!
//! # Zero-allocation steady state
//!
//! Every buffer the loop touches lives in a
//! [`ScheduleWorkspace`](crate::workspace::ScheduleWorkspace):
//! [`ListScheduler::run_into`] resets and refills it in place, so
//! repeated scheduling (pressure sweeps, bicriteria searches, experiment
//! grids) allocates nothing after the first run — see the workspace
//! module docs for the reuse contract. [`ListScheduler::run`] is the
//! convenience form that builds a throwaway workspace.
//!
//! # Registering a new policy
//!
//! 1. Add a variant to the relevant axis enum below.
//! 2. Implement it in the *one* `match` that consumes the axis
//!    (`select_next` for priorities, `choose_procs` for placements,
//!    `place_replicas` for comm policies) — the compiler's
//!    exhaustiveness check lists every site. Route any per-step storage
//!    through a workspace field, not a fresh allocation.
//! 3. Optionally name the combination: add an [`crate::Algorithm`]
//!    variant, wire `scheduler()` / `name()` / `FromStr`, and append it
//!    to [`crate::Algorithm::ALL`] so the CLI, the experiment axes and
//!    the property suite pick it up automatically.
//!
//! # Bit-identity contract
//!
//! For the four paper configurations this pipeline reproduces the seed
//! implementations byte for byte (see `tests/golden.rs`): every
//! floating-point expression is evaluated in the same form and the RNG
//! is consulted in the same order. Treat any change to the loop
//! structure, the fold expressions in [`crate::engine`] or the RNG
//! discipline as a semantic change that must be justified against the
//! golden suite.
//!
//! # Heap-driven schedule pressure
//!
//! The naive [`PriorityAxis::Pressure`] step re-evaluates eq. (1) for
//! *every* free task × *every* processor — `O(free · (preds + ε) · m)`
//! per step, the dominant cost of every FTBAR run. The incremental
//! engine caches, per free task, the eq. (1) arrival row *and* the
//! σ-selection in a [`PressureCache`](crate::workspace::PressureCache)
//! (arrival mins only **decrease**, and only when a predecessor gains a
//! replica; per-processor ready times only **advance**), but even a
//! cached sweep still touches every free task every step — super-linear
//! in v once the frontier is thousands of tasks wide.
//!
//! The production path therefore never sweeps. Free tasks live in one
//! of four *families*, each paying exactly the per-step cost its
//! volatility warrants, with membership tracked through the shared
//! tombstone/epoch discipline of [`ftcollections::EpochHeap`]:
//!
//! * **clean** — cached σ-set *stable*: every selected start strictly
//!   exceeds its processor's ready time. The task sits in the lazy max-
//!   heap keyed `(raw urgency, token)`, plus one min-heap *guard* per
//!   σ-processor armed at its cached start. Zero per-step cost; when a
//!   ready time advances past a guard, the guard fires once and demotes
//!   the task (epoch bump invalidates every heap entry in O(1)).
//! * **hot** — a plain vec of ready-dominated rivals whose arrivals are
//!   still in play. Each step pays a 6-flop urgency upper bound; only
//!   tasks whose bound ties-or-beats the clean top's urgency run the
//!   exact `(ε+1)`-th-smallest pre-check, and only *qualifying* tasks
//!   re-run the full `O(m·(ε+1))` [`select_smallest_into`] evaluation.
//! * **fully ready-dominated (FRD)** — tasks whose max arrival is ≤ the
//!   min ready time: their exact urgency is `rd₍ε₊₁₎ + s(t) − R(n−1)`,
//!   independent of arrivals, so they sit in a heap keyed by their fold
//!   timestamp and qualify as a prefix pop (the bound is monotone in
//!   `s`). The class is absorbing — ready times only grow and arrival
//!   rows only shrink — which is what turns a frontier of tens of
//!   thousands of rivals into ~3 evaluations per step at v = 100k.
//! * **lazy** — tasks whose *bound* lost: parked in urgency- and
//!   start-keyed overflow heaps, resurfacing only when the losing bound
//!   itself becomes competitive.
//!
//! Selection stays bit-for-bit identical to the exhaustive sweep. Raw
//! urgencies are cached *without* the `− R(n−1)` term and the current
//! `R(n−1)` is subtracted fresh at comparison time, so every float
//! comparison and token tie-break is the very one the naive loop
//! performs; order statistics commute with the (weakly monotone)
//! subtraction, so heap keys in the raw domain rank identically; and
//! every prune is by *sound* bound or *exact* value, so a skipped task
//! can never have been the unique max of `(σ, token)` — the only thing
//! the step observes. The naive loop survives as
//! [`ListScheduler::run_into_reference_pressure`], a debug-assert
//! exhaustive cross-check as `run_into_xcheck_pressure`, and a proptest
//! oracle (`tests/pressure_incremental.rs`) pins the equivalence across
//! random DAG families, ε values and seeds; the golden suite pins it
//! against the seed implementations.
//!
//! Composition rule: [`CommAxis::Matched`] disables the duplication half
//! of [`PlacementAxis::MinStart`]. Matched schedules give every replica
//! a *unique* sender per predecessor (Proposition 4.3); minimize-start-
//! time duplication exploits all-to-all first-arrival semantics, and the
//! one-to-one structure of eq. (5) validation has no slot for extra
//! sender replicas.

use crate::engine::Engine;
use crate::error::ScheduleError;
use crate::mc_ftsa::Selector;
use crate::schedule::{CommSelection, Replica, Schedule};
use crate::workspace::{PressureCache, ScheduleWorkspace};
use ftcollections::{select_smallest_into, DaryHeap, OrdF64};
use matching::{
    bottleneck_matching_into, greedy_matching_into, BipartiteGraph, BottleneckScratch,
    GreedyScratch,
};
use platform::Instance;
use rand::Rng;
use std::cmp::Reverse;
use taskgraph::TaskId;

/// How the next free task is selected (the `H(α)` of Section 4.1, or
/// FTBAR's most-urgent sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PriorityAxis {
    /// The paper's *criticalness* `tℓ(t) + bℓ(t)`: dynamic top level
    /// (refreshed as predecessors land) plus static bottom level.
    Criticalness,
    /// Static bottom level only (a HEFT-style upward rank): cheaper to
    /// maintain but blind to where predecessors actually landed.
    BottomLevel,
    /// FTBAR's *schedule pressure*: every step sweeps all free tasks and
    /// picks the pair maximizing `σ(t, P) = S(t, P) + s(t) − R(n−1)`
    /// over each task's best `ε + 1` processors. The sweep also yields
    /// the processor set, which [`PlacementAxis::MinStart`] reuses.
    Pressure,
}

/// How the `ε + 1` hosting processors are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementAxis {
    /// The `ε + 1` processors minimizing the eq. (1) candidate finish
    /// time (FTSA's rule).
    BestFinish,
    /// The `ε + 1` processors minimizing the start time; with
    /// `duplicate`, each placement first runs the Ahmad–Kwok
    /// minimize-start-time pass (FTBAR's rule), duplicating the
    /// arrival-critical parent when that strictly lowers the start.
    /// Under [`PriorityAxis::Pressure`] the processor set from the σ
    /// sweep is reused instead of being recomputed.
    MinStart {
        /// Run the minimize-start-time duplication pass.
        duplicate: bool,
    },
}

/// How replica-to-replica communications are orchestrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommAxis {
    /// Every source replica sends to every destination replica; start
    /// times follow the optimistic/pessimistic folds of eqs. (1)/(3).
    AllToAll,
    /// MC-FTSA's robust one-to-one matching per precedence edge
    /// (Section 4.2): `e(ε+1)` messages, deterministic per-replica
    /// times (the two timelines coincide).
    Matched(Selector),
}

/// One configuration of the unified pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListScheduler {
    /// Task-selection policy.
    pub priority: PriorityAxis,
    /// Processor-selection / duplication policy.
    pub placement: PlacementAxis,
    /// Communication policy.
    pub comm: CommAxis,
}

/// Which implementation drives [`PriorityAxis::Pressure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PressureImpl {
    /// The production path: lazy urgency max-heap + guard queues.
    Heap,
    /// The heap path with a per-step exhaustive-argmax cross-check
    /// (active in debug builds only) — the oracle suite drives this via
    /// `run_into_xcheck_pressure`, production never does.
    Checked,
    /// The exhaustive reference sweep of
    /// `run_into_reference_pressure`: every free task × every
    /// processor, every step.
    Reference,
}

impl PressureImpl {
    /// Whether this implementation maintains the heap + guard state.
    #[inline]
    fn uses_heap(self) -> bool {
        !matches!(self, PressureImpl::Reference)
    }

    /// Whether this implementation maintains the plain free list (the
    /// reference sweep iterates it; the checked path mirrors it for the
    /// exhaustive argmax).
    #[inline]
    fn uses_free_list(self) -> bool {
        !matches!(self, PressureImpl::Heap)
    }
}

/// Task-selection state operating on workspace buffers: the heap-backed
/// `α` of FTSA, or FTBAR's urgency heap (see the module docs).
enum SelKind {
    /// Priority-ranked free list `α`; the key is `(priority, random
    /// tie-break)`, so the heap head is exactly the paper's `H(α)`.
    Ranked {
        /// Whether the priority is `tℓ + bℓ` (true) or `bℓ` alone.
        dynamic: bool,
    },
    /// FTBAR's sweep, driven by the lazy urgency max-heap (or the
    /// exhaustive reference loop — see [`PressureImpl`]).
    Pressure {
        /// Current schedule length `R(n−1)`.
        r_len: f64,
        /// Which pressure implementation runs.
        pimpl: PressureImpl,
    },
}

impl ListScheduler {
    /// Builds a pipeline configuration.
    pub fn new(priority: PriorityAxis, placement: PlacementAxis, comm: CommAxis) -> Self {
        ListScheduler {
            priority,
            placement,
            comm,
        }
    }

    /// Schedules `inst` tolerating `epsilon` fail-stop failures. `rng`
    /// drives random tie-breaking only.
    ///
    /// Builds a throwaway [`ScheduleWorkspace`]; batch callers should
    /// hold one and use [`ListScheduler::run_into`] instead.
    pub fn run(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
    ) -> Result<Schedule, ScheduleError> {
        self.run_with_deadlines(inst, epsilon, rng, None)
    }

    /// [`ListScheduler::run`] reusing the caller's workspace: after the
    /// first call on a given instance shape, scheduling performs **no**
    /// heap allocation — all configurations, both matched-communication
    /// selectors included. The schedule stays owned by the workspace —
    /// clone it to keep it past the next run.
    pub fn run_into<'w>(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
        ws: &'w mut ScheduleWorkspace,
    ) -> Result<&'w Schedule, ScheduleError> {
        self.run_with_deadlines_into(inst, epsilon, rng, None, None, ws)?;
        Ok(&ws.sched)
    }

    /// [`ListScheduler::run_into`] on a *pre-occupied* platform: the
    /// eq. (1)/(3) placement queries start from `occ`'s per-processor
    /// release floors instead of time 0, so replica times come out in
    /// the stream's absolute clock. An empty timeline is bit-identical
    /// to [`ListScheduler::run_into`] (the golden suite's conservation
    /// contract). The produced schedule is *not* folded back into `occ`
    /// — callers decide which replicas actually occupy the platform.
    pub fn run_onto<'w>(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
        occ: &platform::OccupancyTimeline,
        ws: &'w mut ScheduleWorkspace,
    ) -> Result<&'w Schedule, ScheduleError> {
        self.run_with_deadlines_into(inst, epsilon, rng, None, Some(occ.floors()), ws)?;
        Ok(&ws.sched)
    }

    /// [`ListScheduler::run`] with the Section 4.3 per-task deadline
    /// check: the run aborts with [`ScheduleError::DeadlineViolated`] as
    /// soon as a selected task cannot finish by its deadline on its
    /// chosen processors.
    pub(crate) fn run_with_deadlines(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
        deadlines: Option<&[f64]>,
    ) -> Result<Schedule, ScheduleError> {
        let mut ws = ScheduleWorkspace::new();
        self.run_with_deadlines_into(inst, epsilon, rng, deadlines, None, &mut ws)?;
        Ok(ws.take_schedule())
    }

    /// [`ListScheduler::run_into`] driving [`PriorityAxis::Pressure`]
    /// through the *exhaustive reference sweep* instead of the
    /// incremental cache — every free task × every processor, every
    /// step, exactly the pre-incremental loop. This is the oracle the
    /// proptest equivalence suite and the `scheduler/pressure-ref`
    /// bench series run against; it is not a production entry point.
    /// Configurations without a pressure axis behave exactly like
    /// [`ListScheduler::run_into`].
    #[doc(hidden)]
    pub fn run_into_reference_pressure<'w>(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
        ws: &'w mut ScheduleWorkspace,
    ) -> Result<&'w Schedule, ScheduleError> {
        self.run_core(inst, epsilon, rng, None, None, PressureImpl::Reference, ws)?;
        Ok(&ws.sched)
    }

    /// [`ListScheduler::run_into`] with the heap-driven pressure path
    /// cross-checked per step against an exhaustive argmax recomputation
    /// (active in debug builds; a release build behaves exactly like
    /// [`ListScheduler::run_into`]). Only the proptest oracle suite
    /// drives this — production code never pays for the check.
    #[doc(hidden)]
    pub fn run_into_xcheck_pressure<'w>(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
        ws: &'w mut ScheduleWorkspace,
    ) -> Result<&'w Schedule, ScheduleError> {
        self.run_core(inst, epsilon, rng, None, None, PressureImpl::Checked, ws)?;
        Ok(&ws.sched)
    }

    /// The workspace-reusing core: one loop, three axes, no allocation
    /// in the steady state. `floors` (when `Some`) seeds the
    /// per-processor ready times from a persistent occupancy state;
    /// `None` is the historical empty-platform run.
    pub(crate) fn run_with_deadlines_into(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
        deadlines: Option<&[f64]>,
        floors: Option<&[f64]>,
        ws: &mut ScheduleWorkspace,
    ) -> Result<(), ScheduleError> {
        self.run_core(
            inst,
            epsilon,
            rng,
            deadlines,
            floors,
            PressureImpl::Heap,
            ws,
        )
    }

    /// [`ListScheduler::run_with_deadlines_into`] with the pressure
    /// implementation selectable (see [`PressureImpl`]; every other
    /// axis is unaffected by the flag).
    #[allow(clippy::too_many_arguments)]
    fn run_core(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
        deadlines: Option<&[f64]>,
        floors: Option<&[f64]>,
        pimpl: PressureImpl,
        ws: &mut ScheduleWorkspace,
    ) -> Result<(), ScheduleError> {
        let m = inst.num_procs();
        if epsilon + 1 > m {
            return Err(ScheduleError::NotEnoughProcessors { epsilon, procs: m });
        }
        let dag = &inst.dag;
        let replicas = epsilon + 1;

        ws.prepare(inst, epsilon, floors);

        // Recycle the previous run's matched table: clearing the inner
        // vectors keeps their capacity, so MC-FTSA's steady state stays
        // allocation-free.
        let mut comm_tbl: Option<Vec<Vec<(usize, usize)>>> = match self.comm {
            CommAxis::AllToAll => None,
            CommAxis::Matched(_) => {
                let tbl = match std::mem::replace(&mut ws.sched.comm, CommSelection::AllToAll) {
                    CommSelection::Matched(mut t) => {
                        for inner in &mut t {
                            inner.clear();
                        }
                        t.resize_with(dag.num_edges(), Vec::new);
                        t
                    }
                    CommSelection::AllToAll => vec![Vec::new(); dag.num_edges()],
                };
                debug_assert_eq!(tbl.len(), dag.num_edges());
                debug_assert!(tbl.iter().all(Vec::is_empty));
                Some(tbl)
            }
        };

        let ScheduleWorkspace {
            sched,
            ready_lb,
            ready_ub,
            arrive_lb,
            bl,
            waiting_preds,
            alpha,
            tl,
            free,
            token,
            pressure,
            row,
            chosen,
            sweep,
            procs,
            arrival,
            senders,
            graph,
            forced,
            pairs,
            greedy,
            bottleneck,
            ..
        } = ws;

        // Seed the free list with the entry tasks (consuming the RNG in
        // entry order, exactly as the seed implementations did).
        let mut sel = match self.priority {
            PriorityAxis::Criticalness | PriorityAxis::BottomLevel => {
                for &t in dag.entries() {
                    alpha.push(t.index(), Reverse((OrdF64::new(bl[t.index()]), rng.gen())));
                }
                SelKind::Ranked {
                    dynamic: matches!(self.priority, PriorityAxis::Criticalness),
                }
            }
            PriorityAxis::Pressure => {
                pressure.reset(dag.num_tasks(), replicas, m);
                if pimpl.uses_free_list() {
                    free.extend_from_slice(dag.entries());
                }
                for &t in dag.entries() {
                    token[t.index()] = rng.gen();
                    pressure.stale[t.index()] = true;
                    pressure.dirty[t.index()] = true;
                    if pimpl.uses_heap() {
                        // Never-evaluated tasks start hot: their cached
                        // σ starts are +∞, so the hot bound check is
                        // vacuously +∞ and they always qualify for
                        // their first evaluation, exactly like the
                        // reference's vacuous prune bound.
                        pressure.in_free[t.index()] = true;
                        pressure.hot.push(t.index() as u32);
                        pressure.free_len += 1;
                    }
                }
                SelKind::Pressure { r_len: 0.0, pimpl }
            }
        };

        let mut eng = Engine::new(inst, sched, ready_lb, ready_ub, arrive_lb);

        while let Some((t, suggested)) = select_next(
            &mut sel, &eng, alpha, free, token, pressure, bl, replicas, row, chosen, sweep,
        ) {
            // Processor set hosting t's primary replicas, as
            // `(processor, selection score)` pairs in `chosen` — the
            // score is the eq. (1) candidate finish under BestFinish and
            // the earliest start (or σ-sweep value) under MinStart.
            match self.placement {
                PlacementAxis::BestFinish => eng.best_procs_into(t, replicas, row, chosen),
                PlacementAxis::MinStart { .. } => {
                    if !suggested {
                        // The σ sweep (when present) already ordered the
                        // processors by start time; otherwise compute.
                        eng.arrival_row_lb(t, row);
                        select_smallest_into(m, replicas, |j| row[j].max(eng.ready_lb[j]), chosen);
                    }
                }
            }
            procs.clear();
            procs.extend(chosen.iter().map(|&(j, _)| j));

            // Section 4.3 feasibility: the worst guaranteed finish among
            // the selected processors must meet the task's deadline.
            // Best-finish placements already scored each processor with
            // its eq. (1) finish; other placements score by start time,
            // so the finish is derived on demand.
            if let Some(d) = deadlines {
                let worst = chosen
                    .iter()
                    .map(|&(j, score)| match self.placement {
                        PlacementAxis::BestFinish => score,
                        PlacementAxis::MinStart { .. } => eng.finish_candidate_lb(t, j),
                    })
                    .fold(f64::NEG_INFINITY, f64::max);
                if worst > d[t.index()] + 1e-9 {
                    return Err(ScheduleError::DeadlineViolated {
                        task: t,
                        deadline: d[t.index()],
                        finish: worst,
                    });
                }
            }

            // Place the replicas under the comm policy. The placed
            // task's own outgoing-edge folds are deferred and flushed
            // once per step, edge-major (each succ row hot in cache for
            // all ε+1 replicas); duplicated parents fold immediately —
            // their new rows are read within the same step.
            match self.comm {
                CommAxis::AllToAll => {
                    let duplicate =
                        matches!(self.placement, PlacementAxis::MinStart { duplicate: true });
                    let track_dups = matches!(self.priority, PriorityAxis::Pressure);
                    for &j in procs.iter() {
                        if duplicate {
                            if let Some(p) = try_duplicate_critical_parent(&mut eng, t, j) {
                                if track_dups {
                                    pressure.dups.push(p);
                                }
                            }
                        }
                        eng.place_deferred(t, j);
                    }
                    eng.flush_out_edges(t);
                }
                CommAxis::Matched(selector) => place_matched(
                    &mut eng,
                    t,
                    procs,
                    replicas,
                    selector,
                    comm_tbl.as_mut().expect("matched comm allocates its table"),
                    arrival,
                    senders,
                    graph,
                    forced,
                    pairs,
                    greedy,
                    bottleneck,
                ),
            }
            eng.sched.schedule_order.push(t);

            // Parents duplicated by the Ahmad–Kwok pass gained a
            // replica, so their successors' arrival rows decreased —
            // free tasks among them must re-run their row fold. A clean
            // task among them demotes to the hot set (arrival rows only
            // decrease, so its cached σ starts still bound its next
            // evaluation from above); already-dirty tasks just flip
            // stale. (The placed task's own successors cannot be free
            // yet — `in_free` gates them out; they enter hot fresh when
            // released below.)
            if !pressure.dups.is_empty() {
                let use_heap = matches!(&sel, SelKind::Pressure { pimpl, .. } if pimpl.uses_heap());
                let PressureCache {
                    dups,
                    stale,
                    dirty,
                    in_free,
                    epoch,
                    hot,
                    ..
                } = &mut *pressure;
                for &p in dups.iter() {
                    for &(s, _) in dag.succs(p) {
                        let si = s.index();
                        stale[si] = true;
                        if use_heap && in_free[si] && !dirty[si] {
                            dirty[si] = true;
                            epoch[si] = epoch[si].wrapping_add(1);
                            hot.push(si as u32);
                        }
                    }
                }
                dups.clear();
            }

            // Eager tier-2 detection: every processor that advanced its
            // ready time this step fires the guards armed below it,
            // demoting those clean tasks to the dirty family. All
            // placements — primaries, matched replicas and duplicates —
            // land on `procs`, so these are exactly the processors whose
            // ready times moved.
            if let SelKind::Pressure { pimpl, .. } = &sel {
                if pimpl.uses_heap() {
                    drain_ready_guards(&eng, pressure, procs);
                }
            }

            // Refresh successor priorities and release the ones that
            // became free.
            after_schedule(
                &mut sel,
                t,
                &eng,
                alpha,
                free,
                token,
                pressure,
                tl,
                bl,
                waiting_preds,
                rng,
            );
        }

        sched.comm = match comm_tbl {
            None => CommSelection::AllToAll,
            Some(tbl) => CommSelection::Matched(tbl),
        };
        Ok(())
    }
}

/// Pops the next task. For the pressure sweep, `chosen` is additionally
/// filled with the selected processor set (ordered by σ, i.e. by start
/// time) and the returned flag is `true`.
#[allow(clippy::too_many_arguments)]
fn select_next(
    sel: &mut SelKind,
    eng: &Engine<'_>,
    alpha: &mut DaryHeap<crate::workspace::AlphaKey, 4>,
    free: &mut Vec<TaskId>,
    token: &mut [u64],
    pc: &mut PressureCache,
    s_latest: &[f64],
    replicas: usize,
    row: &mut Vec<f64>,
    chosen: &mut Vec<(usize, f64)>,
    sweep: &mut Vec<(usize, f64)>,
) -> Option<(TaskId, bool)> {
    match sel {
        SelKind::Ranked { .. } => {
            let (ti, _) = alpha.pop()?;
            Some((TaskId(ti as u32), false))
        }
        SelKind::Pressure { r_len, pimpl } => {
            let m = eng.inst.num_procs();
            let r = *r_len;
            if matches!(pimpl, PressureImpl::Reference) {
                if free.is_empty() {
                    return None;
                }
                // Exhaustive reference sweep: every free task re-runs
                // the full σ-selection every step. The winning set is
                // kept in `chosen` by swapping the two scratch buffers.
                let mut best: Option<(usize, f64, u64)> = None;
                for (fi, &t) in free.iter().enumerate() {
                    eng.arrival_row_lb(t, row);
                    select_smallest_into(
                        m,
                        replicas,
                        |j| {
                            let start = row[j].max(eng.ready_lb[j]);
                            start + s_latest[t.index()] - r
                        },
                        sweep,
                    );
                    let urgency = sweep.last().expect("replicas >= 1").1;
                    let tok = token[t.index()];
                    let better = match &best {
                        None => true,
                        Some((_, u, bt)) => urgency > *u || (urgency == *u && tok > *bt),
                    };
                    if better {
                        best = Some((fi, urgency, tok));
                        std::mem::swap(chosen, sweep);
                    }
                }
                let (fi, _, _) = best.expect("free list nonempty");
                return Some((free.swap_remove(fi), true));
            }
            // Heap-driven selection, three phases (see the workspace
            // docs for the clean/hot/lazy family invariants):
            //
            // **Hot sweep.** The pruning threshold starts at the clean
            // top's exact urgency (the max clean `σ`, since
            // `x ↦ fl(fl(x) − r)` is weakly monotone). Each hot task
            // gets the reference's six-flop prune bound
            // `max_i max(cs_i, rd_i) + s − R(n−1)` from its cached σ
            // set. Qualifiers re-evaluate exactly (row fold if stale +
            // σ re-selection) and raise the threshold; losers sink into
            // the lazy heaps, where they cost nothing per step until
            // their bound parts resurface. Evaluated tasks promote to
            // the clean heap only when *stable* (every σ start strictly
            // above its processor's ready time — a guard armed at the
            // frontier would fire on the very next placement);
            // ready-dominated rivals stay hot, so their eval ↔ fire
            // cycle never touches a heap.
            //
            // **Lazy drains.** Lazy tasks whose bound parts reach the
            // threshold are popped — qualifying tasks form a *prefix*
            // of each lazy heap's order (the key → bound-part mapping
            // is monotone) — and re-evaluated the same way. The
            // threshold only grows and keys only leave, so one pass
            // over the static heap and the `m` per-processor heaps is
            // complete: the argmax task's own bound part beats every
            // threshold, so it is always reached and evaluated (or
            // already clean).
            //
            // **Pick.** Every task that could win is now clean or was
            // evaluated this step. The clean side's winner is the main
            // heap's top *tie group*: entries whose `fl(raw − r)` all
            // equal the top's (the `− r` subtraction can collapse
            // distinct raw keys, and the reference breaks those ties
            // by token). The group is popped, the max token wins, and
            // the losers are re-pushed after the loop (re-pushing
            // mid-loop would pop them again). That winner then meets
            // the best unpromoted candidate on `(σ, token)`. `R(n−1)`
            // is subtracted fresh everywhere, so every comparison that
            // runs is bitwise the reference sweep's, and the winner —
            // the unique argmax of `(σ, token)`, an order-independent
            // property — matches.
            if pc.free_len == 0 {
                return None;
            }
            pc.stats.steps += 1;
            let cap = 2 * token.len() + 64;
            if pc.heap.raw_len() > cap {
                pc.heap.compact(&pc.epoch);
            }
            if pc.dstat.raw_len() > cap {
                pc.dstat.compact(&pc.epoch);
            }
            let mut bu: Option<f64> = pc.heap.peek(&pc.epoch).map(|(_, key)| key.0.get() - r);
            // Per-step ready-time order statistics: the minimum (the
            // fully-ready-dominated witness threshold) and the
            // `(ε+1)`-th smallest (every FRD task's exact σ slot).
            let rdmin = eng.ready_lb.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            let (rdk, _) = kth_smallest_score(eng.ready_lb, eng.ready_lb, 0.0, 0.0, replicas, row);
            // Best `(σ, token)` among tasks evaluated this step that
            // did not promote to clean — they hold no heap entries, so
            // the pick phase must see them through this channel.
            let mut cand: Option<(f64, u64, u32)> = None;
            let mut evaluate = |pc: &mut PressureCache,
                                id: u32,
                                bu: &mut Option<f64>,
                                cand: &mut Option<(f64, u64, u32)>|
             -> Disposition {
                let ti = id as usize;
                let disp = evaluate_pressure_task(
                    eng, pc, token, s_latest, replicas, m, ti, sweep, r, rdmin,
                );
                // fl(fl(start + s) − r): bitwise the reference σ.
                let u = pc.urgency[ti] - r;
                if bu.map_or(true, |b| u > b) {
                    *bu = Some(u);
                }
                if disp != Disposition::Clean {
                    let tok = token[ti];
                    if cand.map_or(true, |(cu, ct, _)| u > cu || (u == cu && tok > ct)) {
                        *cand = Some((u, tok, id));
                    }
                }
                disp
            };
            // FRD drain: every fully-ready-dominated task's exact
            // urgency is `rd₍ε+1₎ + s − r`, monotone in its key `s`, so
            // qualifiers are a heap prefix. Evaluated tasks re-enter
            // after the drain — their urgency qualifies against itself,
            // so re-pushing mid-loop would pop them forever.
            if pc.frd.raw_len() > cap {
                pc.frd.compact(&pc.epoch);
            }
            pc.requeue.clear();
            while let Some((id, _)) = pc
                .frd
                .pop_if(&pc.epoch, |k| bu.map_or(true, |b| (rdk + k.get()) - r >= b))
            {
                match evaluate(pc, id, &mut bu, &mut cand) {
                    Disposition::Clean => {}
                    Disposition::Frd => pc.requeue.push(id),
                    Disposition::Hot => pc.hot.push(id),
                }
            }
            while let Some(id) = pc.requeue.pop() {
                let ti = id as usize;
                pc.frd.push(id, pc.epoch[ti], OrdF64::new(s_latest[ti]));
            }
            let mut i = 0;
            while i < pc.hot.len() {
                let id = pc.hot[i];
                let ti = id as usize;
                debug_assert!(
                    pc.in_free[ti] && pc.dirty[ti],
                    "hot tasks are free and dirty"
                );
                let base = ti * replicas;
                let mut mstart = f64::NEG_INFINITY;
                for k in 0..replicas {
                    let cs = pc.start[base + k];
                    let rd = eng.ready_lb[pc.proc[base + k] as usize];
                    let ns = if rd > cs { rd } else { cs };
                    if ns > mstart {
                        mstart = ns;
                    }
                }
                let ub = (mstart + s_latest[ti]) - r;
                if bu.map_or(true, |b| ub >= b) {
                    // Exact pre-check: straight off the cached arrival
                    // row, the (ε+1)-th smallest score *value* over all
                    // processors — two running mins for ε = 1 — with no
                    // σ derivation and no cache writes. Pruning on it
                    // is sound (a strictly losing exact urgency cannot
                    // be the argmax) and exact, so only real contenders
                    // pay the full evaluation. Stale rows skip the
                    // check: the fold must run first. The same scan
                    // yields the max arrival, migrating tasks that
                    // became fully ready-dominated out of the hot vec.
                    let mut migrate = false;
                    let qualify = if pc.stale[ti] {
                        true
                    } else {
                        let rbase = ti * m;
                        let (u, amax) = kth_smallest_score(
                            &pc.row[rbase..rbase + m],
                            eng.ready_lb,
                            s_latest[ti],
                            r,
                            replicas,
                            row,
                        );
                        migrate = amax <= rdmin;
                        bu.map_or(true, |b| u >= b)
                    };
                    if qualify {
                        match evaluate(pc, id, &mut bu, &mut cand) {
                            Disposition::Hot => i += 1,
                            Disposition::Clean => {
                                pc.hot.swap_remove(i);
                            }
                            Disposition::Frd => {
                                pc.frd.push(id, pc.epoch[ti], OrdF64::new(s_latest[ti]));
                                pc.hot.swap_remove(i);
                            }
                        }
                    } else if migrate {
                        pc.frd.push(id, pc.epoch[ti], OrdF64::new(s_latest[ti]));
                        pc.hot.swap_remove(i);
                    } else {
                        i += 1;
                    }
                } else {
                    // Out-prioritized: sink into the lazy heaps. Hot
                    // tasks hold no live entries, so no epoch bump is
                    // needed before pushing at the current epoch.
                    let ep = pc.epoch[ti];
                    pc.dstat.push(id, ep, OrdF64::new(pc.urgency[ti]));
                    for k in 0..replicas {
                        pc.dproc[pc.proc[base + k] as usize].push(
                            id,
                            ep,
                            OrdF64::new(s_latest[ti]),
                        );
                    }
                    pc.hot.swap_remove(i);
                }
            }
            while let Some((id, _)) = pc
                .dstat
                .pop_if(&pc.epoch, |k| bu.map_or(true, |b| k.get() - r >= b))
            {
                match evaluate(pc, id, &mut bu, &mut cand) {
                    Disposition::Clean => {}
                    Disposition::Frd => {
                        pc.frd.push(
                            id,
                            pc.epoch[id as usize],
                            OrdF64::new(s_latest[id as usize]),
                        );
                    }
                    Disposition::Hot => pc.hot.push(id),
                }
            }
            for j in 0..m {
                if pc.dproc[j].raw_len() > cap {
                    pc.dproc[j].compact(&pc.epoch);
                }
                let rj = eng.ready_lb[j];
                while let Some((id, _)) =
                    pc.dproc[j].pop_if(&pc.epoch, |k| bu.map_or(true, |b| (rj + k.get()) - r >= b))
                {
                    match evaluate(pc, id, &mut bu, &mut cand) {
                        Disposition::Clean => {}
                        Disposition::Frd => {
                            pc.frd.push(
                                id,
                                pc.epoch[id as usize],
                                OrdF64::new(s_latest[id as usize]),
                            );
                        }
                        Disposition::Hot => pc.hot.push(id),
                    }
                }
            }
            pc.popped.clear();
            let mut wmain = pc.heap.pop(&pc.epoch);
            if let Some((mut gid, mut gkey)) = wmain {
                let gu = gkey.0.get() - r;
                while let Some((id, key)) = pc.heap.pop_if(&pc.epoch, |k| k.0.get() - r >= gu) {
                    debug_assert!(key.0.get() - r == gu, "heap order bounds ties from above");
                    if key.1 > gkey.1 {
                        pc.popped.push((gid, gkey));
                        gid = id;
                        gkey = key;
                    } else {
                        pc.popped.push((id, key));
                    }
                }
                wmain = Some((gid, gkey));
            }
            let wid: u32 = match (wmain, cand) {
                (Some((mid, mkey)), Some((cu, ctok, cid))) => {
                    let mu = mkey.0.get() - r;
                    if cu > mu || (cu == mu && ctok > mkey.1) {
                        // The clean group survives intact, top included.
                        pc.popped.push((mid, mkey));
                        cid
                    } else {
                        mid
                    }
                }
                (Some((mid, _)), None) => mid,
                (None, Some((_, _, cid))) => cid,
                (None, None) => {
                    unreachable!("a free task is always clean or evaluated this step")
                }
            };
            for &(id, key) in pc.popped.iter() {
                pc.heap.push(id, pc.epoch[id as usize], key);
            }
            pc.free_len -= 1;
            // The winner leaves its family: a clean winner's main entry
            // is already popped and the epoch bump kills its guards; a
            // hot winner (still dirty) leaves the hot vec; an FRD (or
            // just-lazy-evaluated) winner's entries die with the bump.
            let ti = wid as usize;
            if pc.dirty[ti] {
                if let Some(pos) = pc.hot.iter().position(|&x| x == wid) {
                    pc.hot.swap_remove(pos);
                }
            }
            pc.in_free[ti] = false;
            pc.epoch[ti] = pc.epoch[ti].wrapping_add(1);
            let base = ti * replicas;
            chosen.clear();
            for i in 0..replicas {
                chosen.push((
                    pc.proc[base + i] as usize,
                    (pc.start[base + i] + s_latest[ti]) - r,
                ));
            }
            let t = TaskId(ti as u32);
            if pimpl.uses_free_list() {
                // Checked mode: mirror free list feeds the exhaustive
                // argmax cross-check (debug builds only).
                #[cfg(debug_assertions)]
                {
                    let mut xbest: Option<(TaskId, f64, u64)> = None;
                    for &ft in free.iter() {
                        eng.arrival_row_lb(ft, row);
                        select_smallest_into(
                            m,
                            replicas,
                            |j| {
                                let start = row[j].max(eng.ready_lb[j]);
                                start + s_latest[ft.index()] - r
                            },
                            sweep,
                        );
                        let urgency = sweep.last().expect("replicas >= 1").1;
                        let tok = token[ft.index()];
                        let better = match &xbest {
                            None => true,
                            Some((_, u, bt)) => urgency > *u || (urgency == *u && tok > *bt),
                        };
                        if better {
                            xbest = Some((ft, urgency, tok));
                        }
                    }
                    let (xt, _, _) = xbest.expect("free list nonempty");
                    assert_eq!(
                        xt, t,
                        "heap-driven pressure selection diverged from the exhaustive argmax"
                    );
                }
                let fi = free
                    .iter()
                    .position(|&x| x == t)
                    .expect("checked free mirror contains the winner");
                free.swap_remove(fi);
            }
            Some((t, true))
        }
    }
}

/// Refreshes successor priorities after `t` was placed and releases the
/// successors that became free.
#[allow(clippy::too_many_arguments)]
fn after_schedule(
    sel: &mut SelKind,
    t: TaskId,
    eng: &Engine<'_>,
    alpha: &mut DaryHeap<crate::workspace::AlphaKey, 4>,
    free: &mut Vec<TaskId>,
    token: &mut [u64],
    pc: &mut PressureCache,
    tl: &mut [f64],
    bl: &[f64],
    waiting_preds: &mut [u32],
    rng: &mut impl Rng,
) {
    let inst = eng.inst;
    let dag = &inst.dag;
    match sel {
        SelKind::Ranked { dynamic } => {
            // Refresh successor top levels:
            //   tℓ(s) ≥ min_k { F(tᵏ) + V(t, s) · max_j d(P(tᵏ), P_j) }
            // (worst-case outgoing delay since s's processor is unknown
            // yet; min over replicas matches equation (1)'s optimistic
            // semantics).
            for &(s, eid) in dag.succs(t) {
                let vol = dag.volume(eid);
                let cand = eng
                    .sched
                    .replicas_of(t)
                    .iter()
                    .map(|r| r.finish_lb + vol * inst.platform.max_delay_from(r.proc.index()))
                    .fold(f64::INFINITY, f64::min);
                let si = s.index();
                tl[si] = tl[si].max(cand);
                waiting_preds[si] -= 1;
                if waiting_preds[si] == 0 {
                    let priority = if *dynamic { tl[si] + bl[si] } else { bl[si] };
                    alpha.push(si, Reverse((OrdF64::new(priority), rng.gen())));
                }
            }
        }
        SelKind::Pressure { r_len, pimpl } => {
            *r_len = eng.current_length_lb();
            for &(s, _) in dag.succs(t) {
                let si = s.index();
                waiting_preds[si] -= 1;
                if waiting_preds[si] == 0 {
                    token[si] = rng.gen();
                    pc.stale[si] = true;
                    pc.dirty[si] = true;
                    if pimpl.uses_heap() {
                        // Released tasks enter hot with +∞ cached σ
                        // starts: their bound check is vacuous and they
                        // always qualify for their first evaluation.
                        pc.in_free[si] = true;
                        pc.hot.push(si as u32);
                        pc.free_len += 1;
                    }
                    if pimpl.uses_free_list() {
                        free.push(s);
                    }
                }
            }
        }
    }
}

/// Family a still-dirty task lands in after an exact evaluation.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Disposition {
    /// Stable σ: promoted to the clean heap, guards armed.
    Clean,
    /// Fully ready-dominated: one `frd` entry keyed `s(t)`.
    Frd,
    /// Ready-dominated with arrivals in play: stays in the hot vec.
    Hot,
}

/// The `k`-th smallest score *value* over all `m` processors, computed
/// from a (non-stale) cached arrival row with the reference's exact
/// float expression `max(arrival_j, ready_j) + s − r`, plus the row's
/// maximum arrival (the fully-ready-dominated witness). The score
/// equals the value [`select_smallest_into`] would report for the σ
/// slot (the order statistic of a multiset is order-independent, and
/// scores are never NaN), so comparing it against the pruning threshold
/// is the reference comparison — without deriving the σ set or touching
/// any cache. The `k = 2` path (ε = 1, every paper configuration's
/// default) is a branchless two-running-min scan the compiler can
/// vectorize.
#[inline]
fn kth_smallest_score(
    arow: &[f64],
    ready: &[f64],
    s: f64,
    r: f64,
    k: usize,
    scratch: &mut Vec<f64>,
) -> (f64, f64) {
    debug_assert!(k >= 1 && k <= arow.len());
    let mut amax = f64::NEG_INFINITY;
    match k {
        1 => {
            let mut m1 = f64::INFINITY;
            for (&a, &rd) in arow.iter().zip(ready) {
                amax = amax.max(a);
                m1 = m1.min((a.max(rd) + s) - r);
            }
            (m1, amax)
        }
        2 => {
            let mut m1 = f64::INFINITY;
            let mut m2 = f64::INFINITY;
            for (&a, &rd) in arow.iter().zip(ready) {
                amax = amax.max(a);
                let v = (a.max(rd) + s) - r;
                m2 = m2.min(m1.max(v));
                m1 = m1.min(v);
            }
            (m2, amax)
        }
        _ => {
            scratch.clear();
            for (&a, &rd) in arow.iter().zip(ready) {
                amax = amax.max(a);
                let v = (a.max(rd) + s) - r;
                if scratch.len() < k {
                    let at = scratch.partition_point(|w| w <= &v);
                    scratch.insert(at, v);
                } else if v < scratch[k - 1] {
                    scratch.pop();
                    let at = scratch.partition_point(|w| w <= &v);
                    scratch.insert(at, v);
                }
            }
            (scratch[k - 1], amax)
        }
    }
}

/// Re-evaluates a dirty free task exactly: re-runs the `O(preds · m)`
/// arrival row fold (stale tasks only) and the `O(m · (ε+1))`
/// σ-selection, then bumps the task's epoch (tombstoning any old
/// entries everywhere). If the fresh σ set is *stable* — every σ start
/// strictly above its processor's ready time — the task promotes to
/// clean: the exact `(raw urgency, token)` main key is pushed and one
/// guard per σ processor is armed at the cached start. A ready-dominated
/// task stays dirty: arming its guards would just fire them on the next
/// placement over its σ procs, so the heap round trip is skipped
/// entirely, and the returned [`Disposition`] tells the caller which
/// dirty sub-family it belongs to (fully ready-dominated or hot — the
/// caller does the corresponding push; nothing is pushed here). The
/// float expressions match the reference sweep exactly, so the cached
/// σ-set and urgency are bitwise the values the exhaustive loop would
/// compute.
#[allow(clippy::too_many_arguments)]
fn evaluate_pressure_task(
    eng: &Engine<'_>,
    pc: &mut PressureCache,
    token: &[u64],
    s_latest: &[f64],
    replicas: usize,
    m: usize,
    ti: usize,
    sweep: &mut Vec<(usize, f64)>,
    r: f64,
    rdmin: f64,
) -> Disposition {
    let base = ti * replicas;
    let rbase = ti * m;
    pc.stats.evals += 1;
    if pc.stale[ti] {
        pc.stats.folds += 1;
        eng.arrival_row_lb_slice(TaskId(ti as u32), &mut pc.row[rbase..rbase + m]);
        pc.stale[ti] = false;
    }
    let arow = &pc.row[rbase..rbase + m];
    select_smallest_into(
        m,
        replicas,
        |j| {
            let start = arow[j].max(eng.ready_lb[j]);
            start + s_latest[ti] - r
        },
        sweep,
    );
    let amax = arow.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let mut stable = true;
    for (i, &(j, _)) in sweep.iter().enumerate() {
        let start = arow[j].max(eng.ready_lb[j]);
        pc.proc[base + i] = j as u32;
        pc.start[base + i] = start;
        // `start == ready` means the very next placement on `j` would
        // fire this task's guard — don't promote, keep it dirty.
        if start <= eng.ready_lb[j] {
            stable = false;
        }
    }
    pc.urgency[ti] = pc.start[base + replicas - 1] + s_latest[ti];
    pc.epoch[ti] = pc.epoch[ti].wrapping_add(1);
    if stable {
        pc.dirty[ti] = false;
        let ep = pc.epoch[ti];
        pc.heap
            .push(ti as u32, ep, (OrdF64::new(pc.urgency[ti]), token[ti]));
        for i in 0..replicas {
            let j = pc.proc[base + i] as usize;
            pc.guards[j].push(ti as u32, ep, Reverse(OrdF64::new(pc.start[base + i])));
        }
        Disposition::Clean
    } else {
        pc.dirty[ti] = true;
        if amax <= rdmin {
            Disposition::Frd
        } else {
            Disposition::Hot
        }
    }
}

/// Eager tier-2 detection (the heap path's replacement for the
/// per-selection ready-time scan): each processor whose ready time
/// advanced this step pops every guard armed strictly below the new
/// ready time — the exact `ready > cached start` condition the
/// reference-equivalence argument needs — and demotes each fired task
/// to the hot set. Fires are cheap: one guard pop plus an epoch bump
/// (tombstoning the task's other entries); the hot bound check at the
/// next selection decides whether the task is still competitive or
/// sinks into the lazy heaps.
fn drain_ready_guards(eng: &Engine<'_>, pc: &mut PressureCache, procs: &[usize]) {
    let cap = 2 * pc.stale.len() + 64;
    for &j in procs {
        let rj = eng.ready_lb[j];
        if pc.guards[j].raw_len() > cap {
            pc.guards[j].compact(&pc.epoch);
        }
        while let Some((id, _)) = pc.guards[j].pop_if(&pc.epoch, |&Reverse(th)| th.get() < rj) {
            let ti = id as usize;
            pc.stats.fires += 1;
            pc.dirty[ti] = true;
            pc.epoch[ti] = pc.epoch[ti].wrapping_add(1);
            pc.hot.push(id);
        }
    }
}

/// Ahmad–Kwok Minimize-Start-Time (one level): if the start of `t` on
/// `j` is dominated by the arrival from one parent, and duplicating that
/// parent onto `j` would strictly lower the start, insert the duplicate.
/// Returns the duplicated parent (its successors' arrival rows just
/// decreased — pressure callers mark them stale).
fn try_duplicate_critical_parent(eng: &mut Engine<'_>, t: TaskId, j: usize) -> Option<TaskId> {
    let dag = &eng.inst.dag;

    let preds = dag.preds(t);
    if preds.is_empty() {
        return None;
    }
    // Arrival per parent (the cached optimistic edge fold) and the
    // critical one.
    let mut crit: Option<(TaskId, f64)> = None;
    let mut second = 0.0f64;
    for &(p, eid) in preds {
        let a = eng.edge_arrival_lb(eid, j);
        match crit {
            Some((_, ca)) if a > ca => {
                second = second.max(ca);
                crit = Some((p, a));
            }
            Some(_) => second = second.max(a),
            None => crit = Some((p, a)),
        }
    }
    let (p, crit_arrival) = crit.expect("nonempty preds");
    let old_start = crit_arrival.max(eng.ready_lb[j]);
    if old_start <= eng.ready_lb[j] + 1e-12 {
        return None; // the processor, not the parent, is the constraint
    }
    // Already collocated? Then the arrival is already communication-free.
    if eng.sched.replicas_of(p).iter().any(|r| r.proc.index() == j) {
        return None;
    }
    // Cost of running a duplicate of p on j, right now.
    let dup_finish = eng.inst.exec.time(p.index(), j) + eng.arrival_lb(p, j).max(eng.ready_lb[j]);
    let new_start = dup_finish.max(second);
    if new_start + 1e-12 < old_start {
        eng.place(p, j);
        return Some(p);
    }
    None
}

/// MC-FTSA's placement step (Section 4.2): per predecessor, select a
/// robust one-to-one communication set between the predecessor's
/// replicas and the destination processors, then place each replica
/// with its deterministic matched times (the two timelines coincide).
/// All scratch comes from the workspace; with either selector the step
/// performs no allocation in steady state.
#[allow(clippy::too_many_arguments)]
fn place_matched(
    eng: &mut Engine<'_>,
    t: TaskId,
    procs: &[usize],
    replicas: usize,
    selector: Selector,
    comm: &mut [Vec<(usize, usize)>],
    arrival: &mut Vec<f64>,
    senders: &mut Vec<Replica>,
    g: &mut BipartiteGraph,
    forced: &mut Vec<(usize, usize)>,
    pairs: &mut Vec<(usize, usize)>,
    greedy: &mut GreedyScratch,
    bottleneck: &mut BottleneckScratch,
) {
    let inst = eng.inst;
    let dag = &inst.dag;

    // Per destination replica r (running on procs[r]), the arrival time
    // of each predecessor's data through the selected matching.
    arrival.clear();
    arrival.resize(replicas, 0.0);

    for &(p, eid) in dag.preds(t) {
        let vol = dag.volume(eid);
        senders.clear();
        senders.extend_from_slice(eng.sched.replicas_of(p));
        // Build the bipartite graph of Section 4.2.
        g.reset(senders.len(), replicas);
        forced.clear();
        for (k, srep) in senders.iter().enumerate() {
            let sp = srep.proc.index();
            if let Some(r) = procs.iter().position(|&q| q == sp) {
                // Shared processor: the only outgoing edge is the
                // internal one (weight = completion of t on that
                // processor if t' were its only predecessor).
                let w = (srep.finish_lb).max(eng.ready_lb[sp]) + inst.exec.time(t.index(), sp);
                g.add_edge(k, r, w);
                forced.push((k, r));
            } else {
                for (r, &q) in procs.iter().enumerate() {
                    let w = (srep.finish_lb + vol * inst.platform.delay(sp, q))
                        .max(eng.ready_lb[q])
                        + inst.exec.time(t.index(), q);
                    g.add_edge(k, r, w);
                }
            }
        }
        match selector {
            Selector::Greedy => {
                let ok = greedy_matching_into(g, forced, greedy, pairs);
                assert!(
                    ok,
                    "matched-comm bipartite graphs always admit a left-perfect matching"
                );
            }
            Selector::Bottleneck => {
                let ok = bottleneck_matching_into(g, forced, bottleneck, pairs);
                assert!(
                    ok,
                    "matched-comm bipartite graphs always admit a left-perfect matching"
                );
            }
        }

        for &(k, r) in pairs.iter() {
            let srep = &senders[k];
            let q = procs[r];
            let a = srep.finish_lb + vol * inst.platform.delay(srep.proc.index(), q);
            arrival[r] = arrival[r].max(a);
            comm[eid.index()].push((k, r));
        }
    }

    // Place the replicas with their deterministic matched times; the
    // outgoing folds flush once, edge-major, after all ε+1 land.
    for (r, &j) in procs.iter().enumerate() {
        let e = inst.exec.time(t.index(), j);
        let start = arrival[r].max(eng.ready_lb[j]);
        eng.place_with_times_deferred(t, j, start, start + e, start, start + e);
    }
    eng.flush_out_edges(t);
}

#[cfg(test)]
mod complexity {
    use crate::workspace::ScheduleWorkspace;
    use platform::gen::{paper_instance, PaperInstanceConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Pins the heap-driven engine's complexity claim at the counter
    /// level, where it can't be blurred by machine noise: on the bench
    /// shape the per-step evaluation count must stay O(1) as v grows
    /// (measured ≈ 3.3 at every size from 5k to 100k; the PR 8 two-pass
    /// sweep sat at ≈ 800 for v = 100k). A regression that quietly
    /// reverts a family to per-step sweeping shows up here as an
    /// evals/step explosion long before the wall-clock benches notice.
    #[test]
    fn evaluations_per_step_stay_bounded() {
        let mut per_step = Vec::new();
        for v in [2000usize, 5000, 10000] {
            let mut rng = StdRng::seed_from_u64(0x1A26E + v as u64);
            let inst = paper_instance(
                &mut rng,
                &PaperInstanceConfig {
                    tasks_lo: v,
                    tasks_hi: v,
                    procs: 20,
                    granularity: 1.0,
                    ..Default::default()
                },
            );
            let mut ws = ScheduleWorkspace::new();
            let sched = crate::Algorithm::Ftbar.scheduler();
            let mut r = StdRng::seed_from_u64(7);
            sched.run_into(&inst, 1, &mut r, &mut ws).unwrap();
            let st = ws.pressure.stats;
            assert_eq!(st.steps as usize, v, "one selection step per task");
            per_step.push(st.evals as f64 / st.steps as f64);
        }
        for (i, &eps) in per_step.iter().enumerate() {
            assert!(
                eps < 16.0,
                "evals/step = {eps:.1} at size index {i} — heap-driven \
                 selection is sweeping again (expected ≈ 3)"
            );
        }
        // Constant, not merely sub-linear: growing v 5× may not even
        // double the per-step evaluation work.
        assert!(
            per_step[2] < per_step[0] * 2.0 + 1.0,
            "evals/step grew {:.1} → {:.1} from v=2000 to v=10000",
            per_step[0],
            per_step[2]
        );
    }
}
