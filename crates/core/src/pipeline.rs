//! The unified list-scheduling pipeline.
//!
//! FTSA, MC-FTSA and FTBAR are all instances of one loop — *select a
//! free task, pick `ε + 1` processors, place replicas, refresh
//! successors* — differing only along three orthogonal axes:
//!
//! | axis | options | paper origin |
//! |------|---------|--------------|
//! | [`PriorityAxis`] | criticalness `tℓ + bℓ` / static `bℓ` / schedule pressure σ | FTSA §4.1 vs FTBAR |
//! | [`PlacementAxis`] | `ε+1` best-finish (eq. 1) / minimize-start-time (± duplication) | FTSA vs Ahmad–Kwok MST |
//! | [`CommAxis`] | all-to-all / robust one-to-one matching | FTSA vs MC-FTSA §4.2 |
//!
//! A [`ListScheduler`] is one point in that 3×2×2+ grid; the public
//! [`Algorithm`](crate::Algorithm) variants are named configurations
//! (see [`Algorithm::scheduler`](crate::Algorithm::scheduler)), and new
//! cross-combinations — pressure-driven FTSA, FTBAR with matched
//! communications — are one-liners rather than a fourth copy of the
//! loop.
//!
//! # Zero-allocation steady state
//!
//! Every buffer the loop touches lives in a
//! [`ScheduleWorkspace`](crate::workspace::ScheduleWorkspace):
//! [`ListScheduler::run_into`] resets and refills it in place, so
//! repeated scheduling (pressure sweeps, bicriteria searches, experiment
//! grids) allocates nothing after the first run — see the workspace
//! module docs for the reuse contract. [`ListScheduler::run`] is the
//! convenience form that builds a throwaway workspace.
//!
//! # Registering a new policy
//!
//! 1. Add a variant to the relevant axis enum below.
//! 2. Implement it in the *one* `match` that consumes the axis
//!    (`select_next` for priorities, `choose_procs` for placements,
//!    `place_replicas` for comm policies) — the compiler's
//!    exhaustiveness check lists every site. Route any per-step storage
//!    through a workspace field, not a fresh allocation.
//! 3. Optionally name the combination: add an [`crate::Algorithm`]
//!    variant, wire `scheduler()` / `name()` / `FromStr`, and append it
//!    to [`crate::Algorithm::ALL`] so the CLI, the experiment axes and
//!    the property suite pick it up automatically.
//!
//! # Bit-identity contract
//!
//! For the four paper configurations this pipeline reproduces the seed
//! implementations byte for byte (see `tests/golden.rs`): every
//! floating-point expression is evaluated in the same form and the RNG
//! is consulted in the same order. Treat any change to the loop
//! structure, the fold expressions in [`crate::engine`] or the RNG
//! discipline as a semantic change that must be justified against the
//! golden suite.
//!
//! # Incremental schedule pressure
//!
//! The naive [`PriorityAxis::Pressure`] step re-evaluates eq. (1) for
//! *every* free task × *every* processor — `O(free · (preds + ε) · m)`
//! per step, the dominant cost of every FTBAR run. The production path
//! instead caches, per free task, the eq. (1) arrival row *and* the
//! σ-selection in a [`PressureCache`](crate::workspace::PressureCache),
//! recomputing only the invalidated tier — exploiting two monotonicity
//! invariants:
//!
//! * a task's cached per-processor arrival min only **decreases**, and
//!   only when one of its predecessors gains a replica — the placement
//!   step marks exactly those successors stale (including successors of
//!   parents duplicated by the Ahmad–Kwok pass); only these re-run the
//!   `O(preds · m)` arrival row fold;
//! * per-processor ready times only **advance**, so a cached start
//!   (`max(arrival, ready)`) is invalidated precisely when `ready_lb`
//!   moved past it — checked lazily per cached σ-entry at selection
//!   time, which also covers placements chosen outside the σ-set (the
//!   `p-ftsa` best-finish combination). This tier re-runs only the
//!   `O(m · (ε+1))` [`select_smallest_into`] from the still-exact
//!   cached row; starts on processors outside the cached σ-set can only
//!   have grown, so an untouched σ-set stays the bitwise selection.
//!
//! A third, purely outcome-level shortcut prunes most of the second
//! tier: the winning task is the unique max of `(σ, token)` — an
//! order-independent property — and for a ready-invalidated task the
//! new σ-set starts on the *cached* processors are exactly
//! `max(cached start, ready)` and bound the new `(ε+1)`-th smallest
//! start from above. A task whose resulting urgency upper bound
//! *strictly* loses to the running best cannot win the step, so its
//! reselect is skipped and its cache simply stays invalidated.
//!
//! Selection stays bit-for-bit identical to the exhaustive sweep: raw
//! urgencies are cached *without* the `− R(n−1)` term and the current
//! `R(n−1)` is subtracted fresh at comparison time, so the float
//! comparisons and token tie-breaks are the very ones the naive loop
//! performs (subtracting the shared `R(n−1)` from unchanged starts
//! reproduces the exact same σ values). The naive loop survives as
//! [`ListScheduler::run_into_reference_pressure`], and a proptest
//! oracle (`tests/pressure_incremental.rs`) pins the equivalence across
//! random DAG families, ε values and seeds; the golden suite pins it
//! against the seed implementations.
//!
//! Composition rule: [`CommAxis::Matched`] disables the duplication half
//! of [`PlacementAxis::MinStart`]. Matched schedules give every replica
//! a *unique* sender per predecessor (Proposition 4.3); minimize-start-
//! time duplication exploits all-to-all first-arrival semantics, and the
//! one-to-one structure of eq. (5) validation has no slot for extra
//! sender replicas.

use crate::engine::Engine;
use crate::error::ScheduleError;
use crate::mc_ftsa::Selector;
use crate::schedule::{CommSelection, Replica, Schedule};
use crate::workspace::{PressureCache, ScheduleWorkspace};
use ftcollections::{select_smallest_into, DaryHeap, OrdF64};
use matching::{
    bottleneck_matching_into, greedy_matching_into, BipartiteGraph, BottleneckScratch,
    GreedyScratch,
};
use platform::Instance;
use rand::Rng;
use std::cmp::Reverse;
use taskgraph::TaskId;

/// How the next free task is selected (the `H(α)` of Section 4.1, or
/// FTBAR's most-urgent sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PriorityAxis {
    /// The paper's *criticalness* `tℓ(t) + bℓ(t)`: dynamic top level
    /// (refreshed as predecessors land) plus static bottom level.
    Criticalness,
    /// Static bottom level only (a HEFT-style upward rank): cheaper to
    /// maintain but blind to where predecessors actually landed.
    BottomLevel,
    /// FTBAR's *schedule pressure*: every step sweeps all free tasks and
    /// picks the pair maximizing `σ(t, P) = S(t, P) + s(t) − R(n−1)`
    /// over each task's best `ε + 1` processors. The sweep also yields
    /// the processor set, which [`PlacementAxis::MinStart`] reuses.
    Pressure,
}

/// How the `ε + 1` hosting processors are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementAxis {
    /// The `ε + 1` processors minimizing the eq. (1) candidate finish
    /// time (FTSA's rule).
    BestFinish,
    /// The `ε + 1` processors minimizing the start time; with
    /// `duplicate`, each placement first runs the Ahmad–Kwok
    /// minimize-start-time pass (FTBAR's rule), duplicating the
    /// arrival-critical parent when that strictly lowers the start.
    /// Under [`PriorityAxis::Pressure`] the processor set from the σ
    /// sweep is reused instead of being recomputed.
    MinStart {
        /// Run the minimize-start-time duplication pass.
        duplicate: bool,
    },
}

/// How replica-to-replica communications are orchestrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommAxis {
    /// Every source replica sends to every destination replica; start
    /// times follow the optimistic/pessimistic folds of eqs. (1)/(3).
    AllToAll,
    /// MC-FTSA's robust one-to-one matching per precedence edge
    /// (Section 4.2): `e(ε+1)` messages, deterministic per-replica
    /// times (the two timelines coincide).
    Matched(Selector),
}

/// One configuration of the unified pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListScheduler {
    /// Task-selection policy.
    pub priority: PriorityAxis,
    /// Processor-selection / duplication policy.
    pub placement: PlacementAxis,
    /// Communication policy.
    pub comm: CommAxis,
}

/// Task-selection state operating on workspace buffers: the heap-backed
/// `α` of FTSA, or FTBAR's free list swept under the pressure objective.
enum SelKind {
    /// Priority-ranked free list `α`; the key is `(priority, random
    /// tie-break)`, so the heap head is exactly the paper's `H(α)`.
    Ranked {
        /// Whether the priority is `tℓ + bℓ` (true) or `bℓ` alone.
        dynamic: bool,
    },
    /// FTBAR's sweep; selection scans all free tasks each step, but only
    /// *dirty* tasks re-run the `O(m)` σ-selection (see the module docs).
    Pressure {
        /// Current schedule length `R(n−1)`.
        r_len: f64,
        /// Run the exhaustive reference sweep instead of the cache
        /// (the oracle path of `run_into_reference_pressure`).
        naive: bool,
    },
}

impl ListScheduler {
    /// Builds a pipeline configuration.
    pub fn new(priority: PriorityAxis, placement: PlacementAxis, comm: CommAxis) -> Self {
        ListScheduler {
            priority,
            placement,
            comm,
        }
    }

    /// Schedules `inst` tolerating `epsilon` fail-stop failures. `rng`
    /// drives random tie-breaking only.
    ///
    /// Builds a throwaway [`ScheduleWorkspace`]; batch callers should
    /// hold one and use [`ListScheduler::run_into`] instead.
    pub fn run(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
    ) -> Result<Schedule, ScheduleError> {
        self.run_with_deadlines(inst, epsilon, rng, None)
    }

    /// [`ListScheduler::run`] reusing the caller's workspace: after the
    /// first call on a given instance shape, scheduling performs **no**
    /// heap allocation — all configurations, both matched-communication
    /// selectors included. The schedule stays owned by the workspace —
    /// clone it to keep it past the next run.
    pub fn run_into<'w>(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
        ws: &'w mut ScheduleWorkspace,
    ) -> Result<&'w Schedule, ScheduleError> {
        self.run_with_deadlines_into(inst, epsilon, rng, None, None, ws)?;
        Ok(&ws.sched)
    }

    /// [`ListScheduler::run_into`] on a *pre-occupied* platform: the
    /// eq. (1)/(3) placement queries start from `occ`'s per-processor
    /// release floors instead of time 0, so replica times come out in
    /// the stream's absolute clock. An empty timeline is bit-identical
    /// to [`ListScheduler::run_into`] (the golden suite's conservation
    /// contract). The produced schedule is *not* folded back into `occ`
    /// — callers decide which replicas actually occupy the platform.
    pub fn run_onto<'w>(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
        occ: &platform::OccupancyTimeline,
        ws: &'w mut ScheduleWorkspace,
    ) -> Result<&'w Schedule, ScheduleError> {
        self.run_with_deadlines_into(inst, epsilon, rng, None, Some(occ.floors()), ws)?;
        Ok(&ws.sched)
    }

    /// [`ListScheduler::run`] with the Section 4.3 per-task deadline
    /// check: the run aborts with [`ScheduleError::DeadlineViolated`] as
    /// soon as a selected task cannot finish by its deadline on its
    /// chosen processors.
    pub(crate) fn run_with_deadlines(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
        deadlines: Option<&[f64]>,
    ) -> Result<Schedule, ScheduleError> {
        let mut ws = ScheduleWorkspace::new();
        self.run_with_deadlines_into(inst, epsilon, rng, deadlines, None, &mut ws)?;
        Ok(ws.take_schedule())
    }

    /// [`ListScheduler::run_into`] driving [`PriorityAxis::Pressure`]
    /// through the *exhaustive reference sweep* instead of the
    /// incremental cache — every free task × every processor, every
    /// step, exactly the pre-incremental loop. This is the oracle the
    /// proptest equivalence suite and the `scheduler/pressure-ref`
    /// bench series run against; it is not a production entry point.
    /// Configurations without a pressure axis behave exactly like
    /// [`ListScheduler::run_into`].
    #[doc(hidden)]
    pub fn run_into_reference_pressure<'w>(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
        ws: &'w mut ScheduleWorkspace,
    ) -> Result<&'w Schedule, ScheduleError> {
        self.run_core(inst, epsilon, rng, None, None, true, ws)?;
        Ok(&ws.sched)
    }

    /// The workspace-reusing core: one loop, three axes, no allocation
    /// in the steady state. `floors` (when `Some`) seeds the
    /// per-processor ready times from a persistent occupancy state;
    /// `None` is the historical empty-platform run.
    pub(crate) fn run_with_deadlines_into(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
        deadlines: Option<&[f64]>,
        floors: Option<&[f64]>,
        ws: &mut ScheduleWorkspace,
    ) -> Result<(), ScheduleError> {
        self.run_core(inst, epsilon, rng, deadlines, floors, false, ws)
    }

    /// [`ListScheduler::run_with_deadlines_into`] with the pressure
    /// implementation selectable (`naive_pressure` = the reference
    /// sweep; every other axis is unaffected by the flag).
    #[allow(clippy::too_many_arguments)]
    fn run_core(
        &self,
        inst: &Instance,
        epsilon: usize,
        rng: &mut impl Rng,
        deadlines: Option<&[f64]>,
        floors: Option<&[f64]>,
        naive_pressure: bool,
        ws: &mut ScheduleWorkspace,
    ) -> Result<(), ScheduleError> {
        let m = inst.num_procs();
        if epsilon + 1 > m {
            return Err(ScheduleError::NotEnoughProcessors { epsilon, procs: m });
        }
        let dag = &inst.dag;
        let replicas = epsilon + 1;

        ws.prepare(inst, epsilon, floors);

        // Recycle the previous run's matched table: clearing the inner
        // vectors keeps their capacity, so MC-FTSA's steady state stays
        // allocation-free.
        let mut comm_tbl: Option<Vec<Vec<(usize, usize)>>> = match self.comm {
            CommAxis::AllToAll => None,
            CommAxis::Matched(_) => {
                let tbl = match std::mem::replace(&mut ws.sched.comm, CommSelection::AllToAll) {
                    CommSelection::Matched(mut t) => {
                        for inner in &mut t {
                            inner.clear();
                        }
                        t.resize_with(dag.num_edges(), Vec::new);
                        t
                    }
                    CommSelection::AllToAll => vec![Vec::new(); dag.num_edges()],
                };
                debug_assert_eq!(tbl.len(), dag.num_edges());
                debug_assert!(tbl.iter().all(Vec::is_empty));
                Some(tbl)
            }
        };

        let ScheduleWorkspace {
            sched,
            ready_lb,
            ready_ub,
            arrive_lb,
            bl,
            waiting_preds,
            alpha,
            tl,
            free,
            token,
            pressure,
            row,
            chosen,
            sweep,
            procs,
            arrival,
            senders,
            graph,
            forced,
            pairs,
            greedy,
            bottleneck,
            ..
        } = ws;

        // Seed the free list with the entry tasks (consuming the RNG in
        // entry order, exactly as the seed implementations did).
        let mut sel = match self.priority {
            PriorityAxis::Criticalness | PriorityAxis::BottomLevel => {
                for &t in dag.entries() {
                    alpha.push(t.index(), Reverse((OrdF64::new(bl[t.index()]), rng.gen())));
                }
                SelKind::Ranked {
                    dynamic: matches!(self.priority, PriorityAxis::Criticalness),
                }
            }
            PriorityAxis::Pressure => {
                pressure.reset(dag.num_tasks(), replicas, m);
                free.extend_from_slice(dag.entries());
                for &t in dag.entries() {
                    token[t.index()] = rng.gen();
                    pressure.stale[t.index()] = true;
                }
                SelKind::Pressure {
                    r_len: 0.0,
                    naive: naive_pressure,
                }
            }
        };

        let mut eng = Engine::new(inst, sched, ready_lb, ready_ub, arrive_lb);

        while let Some((t, suggested)) = select_next(
            &mut sel, &eng, alpha, free, token, pressure, bl, replicas, row, chosen, sweep,
        ) {
            // Processor set hosting t's primary replicas, as
            // `(processor, selection score)` pairs in `chosen` — the
            // score is the eq. (1) candidate finish under BestFinish and
            // the earliest start (or σ-sweep value) under MinStart.
            match self.placement {
                PlacementAxis::BestFinish => eng.best_procs_into(t, replicas, row, chosen),
                PlacementAxis::MinStart { .. } => {
                    if !suggested {
                        // The σ sweep (when present) already ordered the
                        // processors by start time; otherwise compute.
                        eng.arrival_row_lb(t, row);
                        select_smallest_into(m, replicas, |j| row[j].max(eng.ready_lb[j]), chosen);
                    }
                }
            }
            procs.clear();
            procs.extend(chosen.iter().map(|&(j, _)| j));

            // Section 4.3 feasibility: the worst guaranteed finish among
            // the selected processors must meet the task's deadline.
            // Best-finish placements already scored each processor with
            // its eq. (1) finish; other placements score by start time,
            // so the finish is derived on demand.
            if let Some(d) = deadlines {
                let worst = chosen
                    .iter()
                    .map(|&(j, score)| match self.placement {
                        PlacementAxis::BestFinish => score,
                        PlacementAxis::MinStart { .. } => eng.finish_candidate_lb(t, j),
                    })
                    .fold(f64::NEG_INFINITY, f64::max);
                if worst > d[t.index()] + 1e-9 {
                    return Err(ScheduleError::DeadlineViolated {
                        task: t,
                        deadline: d[t.index()],
                        finish: worst,
                    });
                }
            }

            // Place the replicas under the comm policy.
            match self.comm {
                CommAxis::AllToAll => {
                    let duplicate =
                        matches!(self.placement, PlacementAxis::MinStart { duplicate: true });
                    let track_dups = matches!(self.priority, PriorityAxis::Pressure);
                    for &j in procs.iter() {
                        if duplicate {
                            if let Some(p) = try_duplicate_critical_parent(&mut eng, t, j) {
                                if track_dups {
                                    pressure.dups.push(p);
                                }
                            }
                        }
                        eng.place(t, j);
                    }
                }
                CommAxis::Matched(selector) => place_matched(
                    &mut eng,
                    t,
                    procs,
                    replicas,
                    selector,
                    comm_tbl.as_mut().expect("matched comm allocates its table"),
                    arrival,
                    senders,
                    graph,
                    forced,
                    pairs,
                    greedy,
                    bottleneck,
                ),
            }
            eng.sched.schedule_order.push(t);

            // Parents duplicated by the Ahmad–Kwok pass gained a
            // replica, so their successors' arrival rows decreased —
            // free tasks among them must re-run their σ-selection. (The
            // placed task's own successors cannot be free yet; they are
            // marked stale as they become free below.)
            if !pressure.dups.is_empty() {
                let PressureCache { dups, stale, .. } = &mut *pressure;
                for &p in dups.iter() {
                    for &(s, _) in dag.succs(p) {
                        stale[s.index()] = true;
                    }
                }
                dups.clear();
            }

            // Refresh successor priorities and release the ones that
            // became free.
            after_schedule(
                &mut sel,
                t,
                &eng,
                alpha,
                free,
                token,
                pressure,
                tl,
                bl,
                waiting_preds,
                rng,
            );
        }

        sched.comm = match comm_tbl {
            None => CommSelection::AllToAll,
            Some(tbl) => CommSelection::Matched(tbl),
        };
        Ok(())
    }
}

/// Pops the next task. For the pressure sweep, `chosen` is additionally
/// filled with the selected processor set (ordered by σ, i.e. by start
/// time) and the returned flag is `true`.
#[allow(clippy::too_many_arguments)]
fn select_next(
    sel: &mut SelKind,
    eng: &Engine<'_>,
    alpha: &mut DaryHeap<crate::workspace::AlphaKey, 4>,
    free: &mut Vec<TaskId>,
    token: &mut [u64],
    pc: &mut PressureCache,
    s_latest: &[f64],
    replicas: usize,
    row: &mut Vec<f64>,
    chosen: &mut Vec<(usize, f64)>,
    sweep: &mut Vec<(usize, f64)>,
) -> Option<(TaskId, bool)> {
    match sel {
        SelKind::Ranked { .. } => {
            let (ti, _) = alpha.pop()?;
            Some((TaskId(ti as u32), false))
        }
        SelKind::Pressure { r_len, naive } => {
            if free.is_empty() {
                return None;
            }
            let m = eng.inst.num_procs();
            if *naive {
                // Exhaustive reference sweep: every free task re-runs
                // the full σ-selection every step. The winning set is
                // kept in `chosen` by swapping the two scratch buffers.
                let mut best: Option<(usize, f64, u64)> = None;
                for (fi, &t) in free.iter().enumerate() {
                    eng.arrival_row_lb(t, row);
                    select_smallest_into(
                        m,
                        replicas,
                        |j| {
                            let start = row[j].max(eng.ready_lb[j]);
                            start + s_latest[t.index()] - *r_len
                        },
                        sweep,
                    );
                    let urgency = sweep.last().expect("replicas >= 1").1;
                    let tok = token[t.index()];
                    let better = match &best {
                        None => true,
                        Some((_, u, bt)) => urgency > *u || (urgency == *u && tok > *bt),
                    };
                    if better {
                        best = Some((fi, urgency, tok));
                        std::mem::swap(chosen, sweep);
                    }
                }
                let (fi, _, _) = best.expect("free list nonempty");
                return Some((free.swap_remove(fi), true));
            }
            // Incremental sweep. The winner is the unique max of
            // `(σ, token)` over the free tasks — an order-independent
            // property — so the scan runs in two passes:
            //
            // 1. *clean* tasks (valid cache) replay their cached raw
            //    urgency — one subtraction each — establishing a high
            //    running best; invalidated tasks are deferred;
            // 2. each deferred task is first checked against an *exact*
            //    urgency upper bound: its new σ-set starts on the cached
            //    processors are exactly `max(cached start, ready)` when
            //    only ready times advanced, and only *smaller* when the
            //    arrival row decreased (the stale case — rows only
            //    decrease), so the new `(ε+1)`-th smallest start cannot
            //    exceed the max of those ε+1 values. A task whose bound
            //    *strictly* loses cannot win the step: its recompute is
            //    skipped and its cache simply stays invalidated.
            //    Survivors re-run the `O(preds · m)` row fold (stale
            //    only) and the `O(m · (ε+1))` σ-selection.
            //
            // `R(n−1)` is subtracted fresh at comparison time, so the
            // comparisons that do run — and therefore the selected
            // (task, σ-set) — are bitwise the reference sweep's.
            let r = *r_len;
            let mut best: Option<(usize, f64, u64)> = None;
            pc.pending.clear();
            'scan: for (fi, &t) in free.iter().enumerate() {
                let ti = t.index();
                let base = ti * replicas;
                if !pc.stale[ti] {
                    for i in 0..replicas {
                        if eng.ready_lb[pc.proc[base + i] as usize] > pc.start[base + i] {
                            pc.pending.push(fi as u32);
                            continue 'scan;
                        }
                    }
                    // fl(fl(start + s) − r): bitwise the reference σ.
                    let u = pc.urgency[ti] - r;
                    let tok = token[ti];
                    let better = match &best {
                        None => true,
                        Some((_, bu, bt)) => u > *bu || (u == *bu && tok > *bt),
                    };
                    if better {
                        best = Some((fi, u, tok));
                    }
                } else {
                    pc.pending.push(fi as u32);
                }
            }
            for pi in 0..pc.pending.len() {
                let fi = pc.pending[pi] as usize;
                let t = free[fi];
                let ti = t.index();
                let base = ti * replicas;
                let rbase = ti * m;
                // Exact upper bound from the cached σ-set (`+∞` until
                // the first evaluation, making the bound vacuous then).
                let mut mstart = f64::NEG_INFINITY;
                for i in 0..replicas {
                    let cs = pc.start[base + i];
                    let rd = eng.ready_lb[pc.proc[base + i] as usize];
                    let ns = if rd > cs { rd } else { cs };
                    if ns > mstart {
                        mstart = ns;
                    }
                }
                if let Some((_, bu, _)) = &best {
                    let ub = (mstart + s_latest[ti]) - r;
                    if ub < *bu {
                        continue;
                    }
                }
                if pc.stale[ti] {
                    eng.arrival_row_lb_slice(t, &mut pc.row[rbase..rbase + m]);
                    pc.stale[ti] = false;
                }
                let arow = &pc.row[rbase..rbase + m];
                select_smallest_into(
                    m,
                    replicas,
                    |j| {
                        let start = arow[j].max(eng.ready_lb[j]);
                        start + s_latest[ti] - r
                    },
                    sweep,
                );
                for (i, &(j, _)) in sweep.iter().enumerate() {
                    pc.proc[base + i] = j as u32;
                    pc.start[base + i] = arow[j].max(eng.ready_lb[j]);
                }
                pc.urgency[ti] = pc.start[base + replicas - 1] + s_latest[ti];
                let u = pc.urgency[ti] - r;
                let tok = token[ti];
                let better = match &best {
                    None => true,
                    Some((_, bu, bt)) => u > *bu || (u == *bu && tok > *bt),
                };
                if better {
                    best = Some((fi, u, tok));
                }
            }
            let (fi, _, _) = best.expect("free list nonempty");
            let t = free[fi];
            let ti = t.index();
            let base = ti * replicas;
            chosen.clear();
            for i in 0..replicas {
                chosen.push((
                    pc.proc[base + i] as usize,
                    (pc.start[base + i] + s_latest[ti]) - r,
                ));
            }
            Some((free.swap_remove(fi), true))
        }
    }
}

/// Refreshes successor priorities after `t` was placed and releases the
/// successors that became free.
#[allow(clippy::too_many_arguments)]
fn after_schedule(
    sel: &mut SelKind,
    t: TaskId,
    eng: &Engine<'_>,
    alpha: &mut DaryHeap<crate::workspace::AlphaKey, 4>,
    free: &mut Vec<TaskId>,
    token: &mut [u64],
    pc: &mut PressureCache,
    tl: &mut [f64],
    bl: &[f64],
    waiting_preds: &mut [u32],
    rng: &mut impl Rng,
) {
    let inst = eng.inst;
    let dag = &inst.dag;
    match sel {
        SelKind::Ranked { dynamic } => {
            // Refresh successor top levels:
            //   tℓ(s) ≥ min_k { F(tᵏ) + V(t, s) · max_j d(P(tᵏ), P_j) }
            // (worst-case outgoing delay since s's processor is unknown
            // yet; min over replicas matches equation (1)'s optimistic
            // semantics).
            for &(s, eid) in dag.succs(t) {
                let vol = dag.volume(eid);
                let cand = eng
                    .sched
                    .replicas_of(t)
                    .iter()
                    .map(|r| r.finish_lb + vol * inst.platform.max_delay_from(r.proc.index()))
                    .fold(f64::INFINITY, f64::min);
                let si = s.index();
                tl[si] = tl[si].max(cand);
                waiting_preds[si] -= 1;
                if waiting_preds[si] == 0 {
                    let priority = if *dynamic { tl[si] + bl[si] } else { bl[si] };
                    alpha.push(si, Reverse((OrdF64::new(priority), rng.gen())));
                }
            }
        }
        SelKind::Pressure { r_len, .. } => {
            *r_len = eng.current_length_lb();
            for &(s, _) in dag.succs(t) {
                let si = s.index();
                waiting_preds[si] -= 1;
                if waiting_preds[si] == 0 {
                    token[si] = rng.gen();
                    pc.stale[si] = true;
                    free.push(s);
                }
            }
        }
    }
}

/// Ahmad–Kwok Minimize-Start-Time (one level): if the start of `t` on
/// `j` is dominated by the arrival from one parent, and duplicating that
/// parent onto `j` would strictly lower the start, insert the duplicate.
/// Returns the duplicated parent (its successors' arrival rows just
/// decreased — pressure callers mark them stale).
fn try_duplicate_critical_parent(eng: &mut Engine<'_>, t: TaskId, j: usize) -> Option<TaskId> {
    let dag = &eng.inst.dag;

    let preds = dag.preds(t);
    if preds.is_empty() {
        return None;
    }
    // Arrival per parent (the cached optimistic edge fold) and the
    // critical one.
    let mut crit: Option<(TaskId, f64)> = None;
    let mut second = 0.0f64;
    for &(p, eid) in preds {
        let a = eng.edge_arrival_lb(eid, j);
        match crit {
            Some((_, ca)) if a > ca => {
                second = second.max(ca);
                crit = Some((p, a));
            }
            Some(_) => second = second.max(a),
            None => crit = Some((p, a)),
        }
    }
    let (p, crit_arrival) = crit.expect("nonempty preds");
    let old_start = crit_arrival.max(eng.ready_lb[j]);
    if old_start <= eng.ready_lb[j] + 1e-12 {
        return None; // the processor, not the parent, is the constraint
    }
    // Already collocated? Then the arrival is already communication-free.
    if eng.sched.replicas_of(p).iter().any(|r| r.proc.index() == j) {
        return None;
    }
    // Cost of running a duplicate of p on j, right now.
    let dup_finish = eng.inst.exec.time(p.index(), j) + eng.arrival_lb(p, j).max(eng.ready_lb[j]);
    let new_start = dup_finish.max(second);
    if new_start + 1e-12 < old_start {
        eng.place(p, j);
        return Some(p);
    }
    None
}

/// MC-FTSA's placement step (Section 4.2): per predecessor, select a
/// robust one-to-one communication set between the predecessor's
/// replicas and the destination processors, then place each replica
/// with its deterministic matched times (the two timelines coincide).
/// All scratch comes from the workspace; with either selector the step
/// performs no allocation in steady state.
#[allow(clippy::too_many_arguments)]
fn place_matched(
    eng: &mut Engine<'_>,
    t: TaskId,
    procs: &[usize],
    replicas: usize,
    selector: Selector,
    comm: &mut [Vec<(usize, usize)>],
    arrival: &mut Vec<f64>,
    senders: &mut Vec<Replica>,
    g: &mut BipartiteGraph,
    forced: &mut Vec<(usize, usize)>,
    pairs: &mut Vec<(usize, usize)>,
    greedy: &mut GreedyScratch,
    bottleneck: &mut BottleneckScratch,
) {
    let inst = eng.inst;
    let dag = &inst.dag;

    // Per destination replica r (running on procs[r]), the arrival time
    // of each predecessor's data through the selected matching.
    arrival.clear();
    arrival.resize(replicas, 0.0);

    for &(p, eid) in dag.preds(t) {
        let vol = dag.volume(eid);
        senders.clear();
        senders.extend_from_slice(eng.sched.replicas_of(p));
        // Build the bipartite graph of Section 4.2.
        g.reset(senders.len(), replicas);
        forced.clear();
        for (k, srep) in senders.iter().enumerate() {
            let sp = srep.proc.index();
            if let Some(r) = procs.iter().position(|&q| q == sp) {
                // Shared processor: the only outgoing edge is the
                // internal one (weight = completion of t on that
                // processor if t' were its only predecessor).
                let w = (srep.finish_lb).max(eng.ready_lb[sp]) + inst.exec.time(t.index(), sp);
                g.add_edge(k, r, w);
                forced.push((k, r));
            } else {
                for (r, &q) in procs.iter().enumerate() {
                    let w = (srep.finish_lb + vol * inst.platform.delay(sp, q))
                        .max(eng.ready_lb[q])
                        + inst.exec.time(t.index(), q);
                    g.add_edge(k, r, w);
                }
            }
        }
        match selector {
            Selector::Greedy => {
                let ok = greedy_matching_into(g, forced, greedy, pairs);
                assert!(
                    ok,
                    "matched-comm bipartite graphs always admit a left-perfect matching"
                );
            }
            Selector::Bottleneck => {
                let ok = bottleneck_matching_into(g, forced, bottleneck, pairs);
                assert!(
                    ok,
                    "matched-comm bipartite graphs always admit a left-perfect matching"
                );
            }
        }

        for &(k, r) in pairs.iter() {
            let srep = &senders[k];
            let q = procs[r];
            let a = srep.finish_lb + vol * inst.platform.delay(srep.proc.index(), q);
            arrival[r] = arrival[r].max(a);
            comm[eid.index()].push((k, r));
        }
    }

    // Place the replicas with their deterministic matched times.
    for (r, &j) in procs.iter().enumerate() {
        let e = inst.exec.time(t.index(), j);
        let start = arrival[r].max(eng.ready_lb[j]);
        eng.place_with_times(t, j, start, start + e, start, start + e);
    }
}
