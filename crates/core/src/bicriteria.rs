//! Bi-criteria drivers (Section 4.3): latency ↔ fault tolerance.
//!
//! Three modes, exactly as the paper discusses:
//!
//! * **Fixed latency → maximize ε, linear scan**: schedule for ε = 0, 1,
//!   2, … until the guaranteed latency `M` exceeds the budget.
//! * **Fixed latency → maximize ε, binary search**: faster; note that
//!   feasibility of a *heuristic* is not perfectly monotone in ε, so the
//!   result is verified and the scan falls back one step if needed.
//! * **Both fixed**: per-task deadlines `d(t)` are propagated in reverse
//!   topological order with average costs over the `ε+1` *fastest*
//!   processors and links; the FTSA loop aborts as soon as a scheduled
//!   task cannot meet its deadline, detecting infeasibility *before* the
//!   end of the scheduling process.

use crate::error::ScheduleError;
use crate::ftsa::{ftsa_impl, PriorityPolicy};
use crate::schedule::Schedule;
use crate::workspace::ScheduleWorkspace;
use platform::Instance;
use rand::Rng;
use rand::SeedableRng;

/// Result of a maximize-ε search.
#[derive(Debug, Clone)]
pub struct MaxEpsilon {
    /// The largest tolerated failure count found.
    pub epsilon: usize,
    /// The schedule achieving it.
    pub schedule: Schedule,
}

/// Runs one FTSA probe into `ws`. Every ε-sweep below reuses a single
/// workspace, so the repeated scheduling inside a search allocates
/// nothing after the first probe (schedules are only cloned out when
/// they become the search's current best).
fn run_at(inst: &Instance, eps: usize, seed: u64, ws: &mut ScheduleWorkspace) -> bool {
    // Each ε gets its own deterministic tie-break stream so the search is
    // reproducible regardless of probe order.
    let mut rng =
        rand::rngs::StdRng::seed_from_u64(seed ^ (eps as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    ftsa_impl_into(inst, eps, &mut rng, ws)
}

fn ftsa_impl_into(
    inst: &Instance,
    eps: usize,
    rng: &mut rand::rngs::StdRng,
    ws: &mut ScheduleWorkspace,
) -> bool {
    crate::Algorithm::Ftsa
        .scheduler()
        .run_into(inst, eps, rng, ws)
        .is_ok()
}

/// Linear scan: the paper's "simplest way" — schedule for 1 failure, then
/// 2, … while the guaranteed latency `M` stays within `budget`.
/// Returns `None` when even ε = 0 misses the budget.
pub fn max_epsilon_linear(inst: &Instance, budget: f64, seed: u64) -> Option<MaxEpsilon> {
    let mut ws = ScheduleWorkspace::new();
    let mut best: Option<MaxEpsilon> = None;
    for eps in 0..inst.num_procs() {
        if run_at(inst, eps, seed, &mut ws) && ws.schedule().latency_upper_bound() <= budget + 1e-9
        {
            best = Some(MaxEpsilon {
                epsilon: eps,
                schedule: ws.schedule().clone(),
            });
        } else {
            break;
        }
    }
    best
}

/// Binary search on ε — the paper's "better solution". Heuristic
/// feasibility may not be monotone, so the candidate is verified and
/// the probe falls back toward smaller ε when needed.
pub fn max_epsilon_binary(inst: &Instance, budget: f64, seed: u64) -> Option<MaxEpsilon> {
    let mut ws = ScheduleWorkspace::new();
    let feasible = |eps: usize, ws: &mut ScheduleWorkspace| -> bool {
        run_at(inst, eps, seed, ws) && ws.schedule().latency_upper_bound() <= budget + 1e-9
    };
    let mut lo = 0usize;
    let mut hi = inst.num_procs() - 1;
    if !feasible(lo, &mut ws) {
        return None;
    }
    // Invariant: lo is feasible; shrink [lo, hi] to the last feasible ε.
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if feasible(mid, &mut ws) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    feasible(lo, &mut ws).then(|| MaxEpsilon {
        epsilon: lo,
        schedule: ws.take_schedule(),
    })
}

/// Per-task deadlines of Section 4.3 for latency budget `latency` and
/// `epsilon` tolerated failures:
///
/// ```text
/// d(t) = L                                              if Γ⁺(t) = ∅
/// d(t) = min_{s ∈ Γ⁺(t)} { d(s) − Ē(s) − W̄(t, s) }      otherwise
/// ```
///
/// where `Ē` averages over the `ε+1` fastest processors and `W̄` uses the
/// mean delay of the `ε+1` fastest links.
pub fn deadlines(inst: &Instance, latency: f64, epsilon: usize) -> Vec<f64> {
    let dag = &inst.dag;
    let fast_links = inst.platform.average_delay_fastest_links(epsilon + 1);
    let mut d = vec![latency; dag.num_tasks()];
    for &t in dag.topological_order().iter().rev() {
        if dag.out_degree(t) == 0 {
            d[t.index()] = latency;
        } else {
            d[t.index()] = dag
                .succs(t)
                .iter()
                .map(|&(s, eid)| {
                    let e_avg = inst.exec.average_on_fastest_procs(s.index(), epsilon + 1);
                    let w_avg = dag.volume(eid) * fast_links;
                    d[s.index()] - e_avg - w_avg
                })
                .fold(f64::INFINITY, f64::min);
        }
    }
    d
}

/// FTSA with both criteria fixed: returns the schedule if both the
/// failure count and the latency can be honored, or
/// [`ScheduleError::DeadlineViolated`] at the first task proving the
/// combination infeasible.
pub fn ftsa_both_criteria(
    inst: &Instance,
    epsilon: usize,
    latency: f64,
    rng: &mut impl Rng,
) -> Result<Schedule, ScheduleError> {
    let d = deadlines(inst, latency, epsilon);
    ftsa_impl(inst, epsilon, rng, Some(&d), PriorityPolicy::Criticalness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::gen::{paper_instance, PaperInstanceConfig};
    use rand::rngs::StdRng;

    fn inst() -> Instance {
        let mut r = StdRng::seed_from_u64(100);
        paper_instance(&mut r, &PaperInstanceConfig::default())
    }

    #[test]
    fn deadlines_decrease_upstream() {
        let inst = inst();
        let d = deadlines(&inst, 1000.0, 1);
        for (_, s, t, _) in inst.dag.edge_list() {
            assert!(
                d[s.index()] < d[t.index()] + 1e-9,
                "a task's deadline must be earlier than its successors'"
            );
        }
        for t in inst.dag.exits() {
            assert_eq!(d[t.index()], 1000.0);
        }
    }

    #[test]
    fn generous_budget_tolerates_many_failures() {
        let inst = inst();
        let wide = max_epsilon_linear(&inst, f64::INFINITY, 7).unwrap();
        assert_eq!(
            wide.epsilon,
            inst.num_procs() - 1,
            "infinite budget should allow m-1 failures"
        );
    }

    #[test]
    fn zero_budget_is_infeasible() {
        let inst = inst();
        assert!(max_epsilon_linear(&inst, 0.0, 7).is_none());
        assert!(max_epsilon_binary(&inst, 0.0, 7).is_none());
    }

    #[test]
    fn binary_matches_linear_on_moderate_budget() {
        let inst = inst();
        // Budget: 1.3x the ε=0 guaranteed latency — somewhere in between.
        let mut ws = ScheduleWorkspace::new();
        assert!(run_at(&inst, 0, 7, &mut ws));
        let base = ws.schedule().latency_upper_bound();
        let budget = base * 1.3;
        let lin = max_epsilon_linear(&inst, budget, 7);
        let bin = max_epsilon_binary(&inst, budget, 7);
        match (lin, bin) {
            (Some(l), Some(b)) => {
                // Binary search may land on a different (even larger)
                // feasible ε when feasibility is non-monotone; both must
                // honor the budget.
                assert!(l.schedule.latency_upper_bound() <= budget + 1e-9);
                assert!(b.schedule.latency_upper_bound() <= budget + 1e-9);
            }
            (None, None) => {}
            (l, b) => panic!(
                "search modes disagree on feasibility: linear={:?} binary={:?}",
                l.map(|x| x.epsilon),
                b.map(|x| x.epsilon)
            ),
        }
    }

    #[test]
    fn both_criteria_feasible_with_loose_latency() {
        let inst = inst();
        let mut ws = ScheduleWorkspace::new();
        assert!(run_at(&inst, 1, 7, &mut ws));
        let loose = ws.schedule().latency_upper_bound() * 4.0;
        let mut rng = StdRng::seed_from_u64(7);
        let s = ftsa_both_criteria(&inst, 1, loose, &mut rng).unwrap();
        assert!(s.latency_upper_bound() <= loose);
    }

    #[test]
    fn both_criteria_detects_infeasibility_early() {
        let inst = inst();
        let mut rng = StdRng::seed_from_u64(7);
        let err = ftsa_both_criteria(&inst, 2, 1.0, &mut rng).unwrap_err();
        assert!(matches!(err, ScheduleError::DeadlineViolated { .. }));
    }
}
