//! Error types of the scheduler core.

use std::fmt;

/// Errors raised by the scheduling algorithms and validators.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// `ε + 1` replicas cannot be placed on `m < ε + 1` processors.
    NotEnoughProcessors {
        /// Requested number of tolerated failures.
        epsilon: usize,
        /// Available processor count.
        procs: usize,
    },
    /// The bi-criteria run aborted: some task cannot meet its deadline
    /// (Section 4.3's "Failed to satisfy both criteria simultaneously").
    DeadlineViolated {
        /// The task whose deadline is violated.
        task: taskgraph::TaskId,
        /// The deadline `d(t)`.
        deadline: f64,
        /// The best achievable guaranteed finish time.
        finish: f64,
    },
    /// Schedule validation failure (detail in the message).
    Invalid(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NotEnoughProcessors { epsilon, procs } => write!(
                f,
                "cannot tolerate {epsilon} failures with only {procs} processors \
                 (need at least {})",
                epsilon + 1
            ),
            ScheduleError::DeadlineViolated {
                task,
                deadline,
                finish,
            } => write!(
                f,
                "failed to satisfy both criteria simultaneously: task {task} \
                 finishes at {finish:.3} past its deadline {deadline:.3}"
            ),
            ScheduleError::Invalid(msg) => write!(f, "invalid schedule: {msg}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ScheduleError::NotEnoughProcessors {
            epsilon: 3,
            procs: 2,
        };
        assert!(e.to_string().contains("at least 4"));
        let e = ScheduleError::DeadlineViolated {
            task: taskgraph::TaskId(7),
            deadline: 1.0,
            finish: 2.0,
        };
        assert!(e.to_string().contains("t7"));
        let e = ScheduleError::Invalid("oops".into());
        assert!(e.to_string().contains("oops"));
    }
}
