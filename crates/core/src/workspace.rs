//! Reusable scheduling state: the zero-allocation steady-state contract.
//!
//! Building a schedule needs a dozen working buffers — the output
//! [`Schedule`] arenas, the per-(edge, processor) arrival cache, ready
//! times, bottom levels, the heap-backed free list, per-step processor
//! selections and the matched-communication scratch. A
//! [`ScheduleWorkspace`] owns all of them; [`crate::pipeline::ListScheduler::run_into`]
//! (or [`crate::schedule_into`]) resets and refills them in place, so
//! after the first run on a given instance shape **no further heap
//! allocation happens**: FTBAR pressure sweeps, bicriteria ε-searches and
//! experiment grids that reschedule thousands of times touch the
//! allocator exactly once. The root `tests/alloc_counter.rs` suite pins
//! this with a counting global allocator.
//!
//! # Reuse contract
//!
//! * Every buffer is `clear()`-then-`resize()`d at run start — never
//!   reallocated while its capacity suffices. Growing to a *larger*
//!   instance allocates once and then plateaus again.
//! * The produced [`Schedule`] stays owned by the workspace; `run_into`
//!   returns `&Schedule`. Clone it (or [`ScheduleWorkspace::take_schedule`])
//!   to keep it beyond the next run.
//! * A matched-communication table found in the previous run's
//!   `Schedule` is recycled: its per-edge `Vec`s are cleared, not
//!   dropped, so MC-FTSA's steady state is allocation-free too — for
//!   both selectors: the greedy scratch and the bottleneck selector's
//!   binary-search working set (thresholds, residual CSR adjacency,
//!   Hopcroft–Karp buffers) live here and are reused run over run.
//!
//! When adding a new policy to the pipeline, route any per-step storage
//! through a field here (cleared in [`ScheduleWorkspace::prepare`])
//! instead of allocating in the loop — that keeps the allocator test
//! green and the hot path flat.

use crate::levels::AverageCosts;
use crate::schedule::{Replica, Schedule};
use ftcollections::{DaryHeap, OrdF64};
use matching::{BipartiteGraph, BottleneckScratch, GreedyScratch};
use platform::Instance;
use std::cmp::Reverse;
use taskgraph::TaskId;

/// Priority key of the ranked free list `α`: max-heap over
/// `(priority, random tie-break)`.
pub(crate) type AlphaKey = Reverse<(OrdF64, u64)>;

/// Incremental state of FTBAR's schedule-pressure sweep: per free task,
/// the eq. (1) arrival row and the σ-selection are cached and only the
/// invalidated part is recomputed.
///
/// The two invalidation causes have very different costs and are
/// tracked separately:
///
/// * one of the task's predecessors gains a replica — its arrival row
///   can only *decrease* (the PR 3/4 cache invariant), so the
///   `O(preds · m)` row fold must re-run; flagged eagerly in
///   [`stale`](Self::stale) by the placement step;
/// * a processor in its cached σ-set advances its ready time past the
///   cached start — detected lazily by comparing the cached starts
///   against `ready_lb` at selection time (ready times only advance, so
///   untouched cached entries are exact). Only the cheap `O(m·(ε+1))`
///   σ-selection re-runs, straight from the cached [`row`](Self::row).
///
/// Everything is keyed by *r_len-free raw urgencies* (`start + s(t)`,
/// without the `− R(n−1)` term): the current `R(n−1)` is subtracted at
/// comparison time, reproducing the exhaustive sweep's float comparisons
/// and token tie-breaks — see `select_next` in the pipeline.
#[derive(Debug, Default)]
pub(crate) struct PressureCache {
    /// Cached per-task arrival rows (flat, stride = `m`): exact between
    /// [`stale`](Self::stale) events, never read before the first one.
    pub row: Vec<f64>,
    /// Cached σ-set processors, `replicas` entries per task (flat,
    /// stride = `ε + 1`), in σ order.
    pub proc: Vec<u32>,
    /// Cached start times aligned with [`proc`](Self::proc)
    /// (`max(arrival, ready_lb)` at cache time); `+∞` until the task's
    /// first evaluation, which makes the urgency upper bound vacuous for
    /// never-evaluated tasks.
    pub start: Vec<f64>,
    /// Cached raw urgency per task: `(ε+1)`-th smallest start `+ s(t)`,
    /// *without* the `− R(n−1)` term (subtracted fresh each step).
    pub urgency: Vec<f64>,
    /// Tasks whose arrival row changed (or that never were evaluated):
    /// row fold + σ re-selection required.
    pub stale: Vec<bool>,
    /// Per-step scratch: free-list indices of invalidated tasks,
    /// deferred to the second scan pass (pruned against the clean max).
    pub pending: Vec<u32>,
    /// Per-step scratch: parents duplicated by the Ahmad–Kwok pass this
    /// step (their successors' arrival rows changed → mark stale).
    pub dups: Vec<TaskId>,
}

impl PressureCache {
    /// Clears and resizes every buffer for a run over `v` tasks on `m`
    /// processors at `replicas = ε + 1` — reusing capacity, so
    /// steady-state reruns allocate nothing. All tasks start non-stale;
    /// the pipeline marks tasks stale as they enter the free list.
    pub fn reset(&mut self, v: usize, replicas: usize, m: usize) {
        self.row.clear();
        self.row.resize(v * m, 0.0);
        self.proc.clear();
        self.proc.resize(v * replicas, 0);
        self.start.clear();
        self.start.resize(v * replicas, f64::INFINITY);
        self.urgency.clear();
        self.urgency.resize(v, 0.0);
        self.stale.clear();
        self.stale.resize(v, false);
        self.pending.clear();
        self.dups.clear();
    }
}

/// Owns every buffer a [`crate::pipeline::ListScheduler`] run needs, so
/// repeated runs are allocation-free. See the [module docs](self).
#[derive(Debug, Default)]
pub struct ScheduleWorkspace {
    /// The output schedule (arenas reused across runs).
    pub(crate) sched: Schedule,
    /// Engine: optimistic per-processor ready times.
    pub(crate) ready_lb: Vec<f64>,
    /// Engine: pessimistic per-processor ready times.
    pub(crate) ready_ub: Vec<f64>,
    /// Engine: flat per-(edge, processor) optimistic arrival cache.
    pub(crate) arrive_lb: Vec<f64>,
    /// Average execution / delay costs (`Ē`, `d̄`).
    pub(crate) avg: AverageCosts,
    /// Static bottom levels `bℓ`.
    pub(crate) bl: Vec<f64>,
    /// Unscheduled-predecessor counts.
    pub(crate) waiting_preds: Vec<u32>,
    /// Ranked free list `α` (criticalness / bottom-level priorities).
    pub(crate) alpha: DaryHeap<AlphaKey, 4>,
    /// Dynamic top levels `tℓ`.
    pub(crate) tl: Vec<f64>,
    /// FTBAR's plain free list.
    pub(crate) free: Vec<TaskId>,
    /// Random urgency tie-break tokens for the pressure sweep.
    pub(crate) token: Vec<u64>,
    /// Incremental schedule-pressure state (cached σ-selections + dirty
    /// tracking); sized by the pressure seeding step, cleared here.
    pub(crate) pressure: PressureCache,
    /// Per-processor arrival-row scratch (see
    /// [`crate::engine`]'s row-major arrival fold).
    pub(crate) row: Vec<f64>,
    /// Per-step chosen `(processor, score)` set.
    pub(crate) chosen: Vec<(usize, f64)>,
    /// Pressure-sweep candidate buffer (per free task).
    pub(crate) sweep: Vec<(usize, f64)>,
    /// Per-step plain processor list.
    pub(crate) procs: Vec<usize>,
    /// Matched placement: per-destination-replica arrival times.
    pub(crate) arrival: Vec<f64>,
    /// Matched placement: sender replicas of the current predecessor.
    pub(crate) senders: Vec<Replica>,
    /// Matched placement: the Section 4.2 bipartite graph.
    pub(crate) graph: BipartiteGraph,
    /// Matched placement: forced internal pairs.
    pub(crate) forced: Vec<(usize, usize)>,
    /// Matched placement: selected pairs of the current predecessor.
    pub(crate) pairs: Vec<(usize, usize)>,
    /// Greedy selector scratch.
    pub(crate) greedy: GreedyScratch,
    /// Bottleneck selector scratch (binary search + Hopcroft–Karp).
    pub(crate) bottleneck: BottleneckScratch,
}

impl ScheduleWorkspace {
    /// Creates an empty workspace; buffers are sized lazily by the first
    /// run.
    pub fn new() -> Self {
        Self::default()
    }

    /// The schedule produced by the most recent run.
    pub fn schedule(&self) -> &Schedule {
        &self.sched
    }

    /// Moves the most recent schedule out, leaving an empty one behind
    /// (the next run then re-grows the arenas — use [`Clone`] on
    /// [`ScheduleWorkspace::schedule`] instead to stay allocation-free).
    pub fn take_schedule(&mut self) -> Schedule {
        std::mem::take(&mut self.sched)
    }

    /// Resets every buffer for a run over `inst` at `epsilon`, reusing
    /// capacity. Also recomputes the average costs and bottom levels.
    ///
    /// `floors` seeds the per-processor ready times from a persistent
    /// occupancy state (see [`crate::schedule_onto`]): processor `j`
    /// starts at `floors[j]` instead of `0.0`. `None` — or all-zero
    /// floors — is bit-identical to the historical empty-platform run.
    pub(crate) fn prepare(&mut self, inst: &Instance, epsilon: usize, floors: Option<&[f64]>) {
        let dag = &inst.dag;
        let v = dag.num_tasks();
        let m = inst.num_procs();
        self.sched.reset(v, m, epsilon);
        self.ready_lb.clear();
        self.ready_ub.clear();
        match floors {
            Some(f) => {
                assert_eq!(f.len(), m, "occupancy floors must cover all processors");
                self.ready_lb.extend_from_slice(f);
                self.ready_ub.extend_from_slice(f);
            }
            None => {
                self.ready_lb.resize(m, 0.0);
                self.ready_ub.resize(m, 0.0);
            }
        }
        self.arrive_lb.clear();
        self.arrive_lb.resize(dag.num_edges() * m, f64::INFINITY);
        self.avg.fill(inst);
        crate::levels::bottom_levels_into(inst, &self.avg, &mut self.bl);
        self.waiting_preds.clear();
        self.waiting_preds
            .extend((0..v as u32).map(|t| dag.in_degree(TaskId(t)) as u32));
        self.alpha.clear();
        self.tl.clear();
        self.tl.resize(v, 0.0);
        self.free.clear();
        self.token.clear();
        self.token.resize(v, 0);
        self.pressure.dups.clear();
        self.row.clear();
        self.chosen.clear();
        self.sweep.clear();
        self.procs.clear();
        self.arrival.clear();
        self.senders.clear();
        self.forced.clear();
        self.pairs.clear();
    }
}
