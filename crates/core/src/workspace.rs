//! Reusable scheduling state: the zero-allocation steady-state contract.
//!
//! Building a schedule needs a dozen working buffers — the output
//! [`Schedule`] arenas, the per-(edge, processor) arrival cache, ready
//! times, bottom levels, the heap-backed free list, per-step processor
//! selections and the matched-communication scratch. A
//! [`ScheduleWorkspace`] owns all of them; [`crate::pipeline::ListScheduler::run_into`]
//! (or [`crate::schedule_into`]) resets and refills them in place, so
//! after the first run on a given instance shape **no further heap
//! allocation happens**: FTBAR pressure sweeps, bicriteria ε-searches and
//! experiment grids that reschedule thousands of times touch the
//! allocator exactly once. The root `tests/alloc_counter.rs` suite pins
//! this with a counting global allocator.
//!
//! # Reuse contract
//!
//! * Every buffer is `clear()`-then-`resize()`d at run start — never
//!   reallocated while its capacity suffices. Growing to a *larger*
//!   instance allocates once and then plateaus again.
//! * The produced [`Schedule`] stays owned by the workspace; `run_into`
//!   returns `&Schedule`. Clone it (or [`ScheduleWorkspace::take_schedule`])
//!   to keep it beyond the next run.
//! * A matched-communication table found in the previous run's
//!   `Schedule` is recycled: its per-edge `Vec`s are cleared, not
//!   dropped, so MC-FTSA's steady state is allocation-free too — for
//!   both selectors: the greedy scratch and the bottleneck selector's
//!   binary-search working set (thresholds, residual CSR adjacency,
//!   Hopcroft–Karp buffers) live here and are reused run over run.
//!
//! When adding a new policy to the pipeline, route any per-step storage
//! through a field here (cleared in [`ScheduleWorkspace::prepare`])
//! instead of allocating in the loop — that keeps the allocator test
//! green and the hot path flat.

use crate::levels::AverageCosts;
use crate::schedule::{Replica, Schedule};
use ftcollections::{DaryHeap, EpochHeap, OrdF64};
use matching::{BipartiteGraph, BottleneckScratch, GreedyScratch};
use platform::Instance;
use std::cmp::Reverse;
use taskgraph::TaskId;

/// Priority key of the ranked free list `α`: max-heap over
/// `(priority, random tie-break)`.
pub(crate) type AlphaKey = Reverse<(OrdF64, u64)>;

/// Incremental state of FTBAR's heap-driven schedule-pressure
/// selection: per free task, the eq. (1) arrival row and the
/// σ-selection are cached, a lazy max-heap over `(raw urgency, token)`
/// keys orders the stable tasks, and only invalidated tasks whose
/// urgency *upper bound* reaches the selection front are re-evaluated.
///
/// Every free task is in exactly one of four *families*, all sharing
/// one [`epoch`](Self::epoch) array, so a single bump moves a task
/// between families in O(1) (stale heap entries die lazily):
///
/// * **clean** — its cached row, σ-set and urgency are the exact values
///   the reference sweep would compute *right now*, and the σ-set is
///   *stable*: every selected start strictly exceeds its processor's
///   ready time. It holds one [`heap`](Self::heap) entry keyed
///   `(raw urgency, token)` and one guard per cached σ processor in
///   [`guards`](Self::guards), armed at the cached start. Clean tasks
///   cost **nothing** per step; a ready time advancing past a guard
///   fires it once (strictly, matching the reference's `ready > start`
///   test) and demotes the task to **hot**.
/// * **hot** — ready-dominated rivals whose arrivals are still in play,
///   in the plain [`hot`](Self::hot) vec with *no* heap entries. Each
///   step pays a 6-flop urgency upper bound per hot task
///   (`max_i max(cached startᵢ, ready(σᵢ)) + s(t) − R(n−1)`, sound
///   because cached starts only over-estimate and σ ready times bound
///   the rest); tasks whose bound ties-or-beats the clean top run an
///   exact `(ε+1)`-th-smallest pre-check on the cached row, and only
///   qualifying tasks pay the full `O(m·(ε+1))` evaluation.
/// * **fully ready-dominated (FRD)** — max arrival ≤ min ready time at
///   a fresh fold: the exact urgency `rd₍ε₊₁₎ + s(t) − R(n−1)` no
///   longer depends on the arrival row, so the task sits in the
///   [`frd`](Self::frd) heap keyed by its fold-time `s(t)` and
///   qualification pops as a *prefix* (the bound is monotone in `s`).
///   The class is absorbing — ready times only grow, arrival rows only
///   shrink — and absorbs the bulk of a wide frontier.
/// * **lazy** — its 6-flop *bound* lost a hot sweep: parked in the
///   [`dstat`](Self::dstat) heap (keyed by cached raw urgency) and one
///   [`dproc`](Self::dproc)`[j]` heap per cached σ processor (keyed
///   `s(t)`), resurfacing only when a bound part reaches the selection
///   front. Since `x ↦ fl(fl(x + s) − r)` is weakly monotone, the
///   tasks whose bound reaches any threshold form a prefix of each
///   heap's order; only the `m + 3` heap *tops* are inspected per step.
///
/// A predecessor gaining a replica can only *decrease* the arrival row
/// (the PR 3/4 cache invariant), so the cached urgency stays a valid
/// static upper bound; the task is flagged [`stale`](Self::stale) (row
/// refold required on evaluation) and demoted to hot. A non-clean task
/// re-enters the clean family only through a full re-evaluation (row
/// refold if stale + `O(m · (ε+1))` σ-selection) that lands stable —
/// exactly the tasks the PR 8 two-pass scan re-evaluated, but found in
/// `O(log)` per evaluation instead of an `O(free)` sweep, and ~3 per
/// step in the large-v regime.
///
/// Everything is keyed by *r_len-free raw urgencies* (`start + s(t)`,
/// without the `− R(n−1)` term): the current `R(n−1)` is subtracted at
/// comparison time, reproducing the exhaustive sweep's float comparisons
/// and token tie-breaks — see `select_next` in the pipeline.
#[derive(Debug, Default)]
pub(crate) struct PressureCache {
    /// Cached per-task arrival rows (flat, stride = `m`): exact between
    /// [`stale`](Self::stale) events, never read before the first one.
    pub row: Vec<f64>,
    /// Cached σ-set processors, `replicas` entries per task (flat,
    /// stride = `ε + 1`), in σ order.
    pub proc: Vec<u32>,
    /// Cached start times aligned with [`proc`](Self::proc)
    /// (`max(arrival, ready_lb)` at cache time); `+∞` until the task's
    /// first evaluation, which makes the urgency upper bound vacuous for
    /// never-evaluated tasks.
    pub start: Vec<f64>,
    /// Cached raw urgency per task: `(ε+1)`-th smallest start `+ s(t)`,
    /// *without* the `− R(n−1)` term (subtracted fresh each step).
    pub urgency: Vec<f64>,
    /// Tasks whose arrival row changed (or that never were evaluated):
    /// row fold + σ re-selection required. `stale ⊆ dirty`.
    pub stale: Vec<bool>,
    /// Tasks in the *dirty* family (bound-tracked, evaluation
    /// deferred); cleared by re-evaluation. Clean tasks' main-heap keys
    /// are exact.
    pub dirty: Vec<bool>,
    /// Whether the task is free (released, not yet selected) — gates
    /// the dup-invalidation path, which must not resurrect the task
    /// being placed or still-waiting successors.
    pub in_free: Vec<bool>,
    /// Per-task entry epoch; bumping tombstones every outstanding entry
    /// of the task across *all* heaps below at once.
    pub epoch: Vec<u32>,
    /// Clean-family max-heap over `(exact raw urgency, token)`.
    pub heap: EpochHeap<(OrdF64, u64)>,
    /// Per-processor guard min-queues keyed by the cached σ start:
    /// a clean task's guard on processor `j` fires when `ready_lb[j]`
    /// moves strictly past it, demoting the task to the dirty family.
    pub guards: Vec<EpochHeap<Reverse<OrdF64>>>,
    /// Dirty-family max-heap over the *static* bound part — the cached
    /// raw urgency (`max_i startᵢ + s(t)`; `+∞` for never-evaluated
    /// tasks, which therefore always qualify for evaluation).
    pub dstat: EpochHeap<OrdF64>,
    /// Dirty-family per-processor max-heaps over `s(t)`, one entry per
    /// cached σ processor: the dynamic bound part `ready_j + s(t)` is
    /// monotone in the key, so qualifying tasks are a heap prefix.
    pub dproc: Vec<EpochHeap<OrdF64>>,
    /// The *hot* subset of the dirty family: frontier rivals whose σ
    /// starts ride the advancing ready times. They hold **no** heap
    /// entries; each selection re-checks their bound with the six-flop
    /// PR 8 expression and either evaluates them (bound qualifies),
    /// keeps them hot (evaluated but still ready-dominated), or sinks
    /// them into `dstat`/`dproc` (bound lost — not competitive). This
    /// keeps the eval ↔ invalidation cycle of competitive tasks free of
    /// heap traffic.
    pub hot: Vec<u32>,
    /// *Fully ready-dominated* dirty tasks: every cached arrival is at
    /// most every current ready time (witnessed by
    /// `max_j arrival_j ≤ min_j ready_j` at a fresh fold), so every
    /// per-processor score is `ready_j + s(t)` and the exact urgency is
    /// `rd₍ε+1₎ + s(t) − R(n−1)` — the `(ε+1)`-th smallest ready time
    /// plus the task size, *independent of the task's arrivals*. The
    /// class is absorbing (ready times only grow, arrivals only
    /// shrink), so one max-heap entry keyed `s(t)` serves until the
    /// task wins: the per-step qualification `rd₍ε+1₎ + s − R ≥ bu` is
    /// monotone in `s`, making qualifiers a heap prefix — the bulk of
    /// the frontier rivals cost nothing per step.
    pub frd: EpochHeap<OrdF64>,
    /// Per-step scratch: fully-ready-dominated tasks evaluated this
    /// step, re-pushed into [`frd`](Self::frd) after the drain
    /// (re-pushing mid-loop would pop them again — their exact urgency
    /// qualifies against itself).
    pub requeue: Vec<u32>,
    /// Number of free (released, unselected) tasks — the heap path's
    /// replacement for the reference sweep's free list length.
    pub free_len: usize,
    /// Per-step scratch: entries popped during selection that did not
    /// win, re-pushed after the winner is known (re-pushing mid-loop
    /// could re-pop them within the same step).
    pub popped: Vec<(u32, (OrdF64, u64))>,
    /// Per-step scratch: parents duplicated by the Ahmad–Kwok pass this
    /// step (their successors' arrival rows changed → mark stale).
    pub dups: Vec<TaskId>,
    /// Run counters (reset per run): selection steps, full σ
    /// re-evaluations, guard firings — the terms of the heap path's
    /// `O(evals · m + fires)` cost model, exposed for diagnostics.
    pub stats: PressureStats,
}

/// Work counters of one heap-driven pressure run; see
/// [`PressureCache::stats`].
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct PressureStats {
    /// Selection steps taken.
    pub steps: u64,
    /// Full σ re-evaluations (row folds counted separately via
    /// [`PressureStats::folds`]).
    pub evals: u64,
    /// Guard firings (clean → dirty demotions from ready advances).
    pub fires: u64,
    /// Arrival-row refolds (the `O(preds · m)` tier).
    pub folds: u64,
}

impl PressureCache {
    /// Clears and resizes every buffer for a run over `v` tasks on `m`
    /// processors at `replicas = ε + 1` — reusing capacity, so
    /// steady-state reruns allocate nothing (guard queues are kept when
    /// `m` shrinks and only grown when it grows). All tasks start
    /// non-stale; the pipeline marks tasks stale/dirty as they enter the
    /// free list.
    pub fn reset(&mut self, v: usize, replicas: usize, m: usize) {
        self.row.clear();
        self.row.resize(v * m, 0.0);
        self.proc.clear();
        self.proc.resize(v * replicas, 0);
        self.start.clear();
        self.start.resize(v * replicas, f64::INFINITY);
        self.urgency.clear();
        self.urgency.resize(v, 0.0);
        self.stale.clear();
        self.stale.resize(v, false);
        self.dirty.clear();
        self.dirty.resize(v, false);
        self.in_free.clear();
        self.in_free.resize(v, false);
        self.epoch.clear();
        self.epoch.resize(v, 0);
        self.heap.clear();
        if self.guards.len() < m {
            self.guards.resize_with(m, EpochHeap::new);
        }
        for g in &mut self.guards {
            g.clear();
        }
        self.dstat.clear();
        if self.dproc.len() < m {
            self.dproc.resize_with(m, EpochHeap::new);
        }
        for g in &mut self.dproc {
            g.clear();
        }
        self.hot.clear();
        self.frd.clear();
        self.requeue.clear();
        self.free_len = 0;
        self.popped.clear();
        self.dups.clear();
        self.stats = PressureStats::default();
    }
}

/// Owns every buffer a [`crate::pipeline::ListScheduler`] run needs, so
/// repeated runs are allocation-free. See the [module docs](self).
#[derive(Debug, Default)]
pub struct ScheduleWorkspace {
    /// The output schedule (arenas reused across runs).
    pub(crate) sched: Schedule,
    /// Engine: optimistic per-processor ready times.
    pub(crate) ready_lb: Vec<f64>,
    /// Engine: pessimistic per-processor ready times.
    pub(crate) ready_ub: Vec<f64>,
    /// Engine: flat per-(edge, processor) optimistic arrival cache.
    pub(crate) arrive_lb: Vec<f64>,
    /// Average execution / delay costs (`Ē`, `d̄`).
    pub(crate) avg: AverageCosts,
    /// Static bottom levels `bℓ`.
    pub(crate) bl: Vec<f64>,
    /// Unscheduled-predecessor counts.
    pub(crate) waiting_preds: Vec<u32>,
    /// Ranked free list `α` (criticalness / bottom-level priorities).
    pub(crate) alpha: DaryHeap<AlphaKey, 4>,
    /// Dynamic top levels `tℓ`.
    pub(crate) tl: Vec<f64>,
    /// FTBAR's plain free list.
    pub(crate) free: Vec<TaskId>,
    /// Random urgency tie-break tokens for the pressure sweep.
    pub(crate) token: Vec<u64>,
    /// Incremental schedule-pressure state (cached σ-selections + dirty
    /// tracking); sized by the pressure seeding step, cleared here.
    pub(crate) pressure: PressureCache,
    /// Per-processor arrival-row scratch (see
    /// [`crate::engine`]'s row-major arrival fold).
    pub(crate) row: Vec<f64>,
    /// Per-step chosen `(processor, score)` set.
    pub(crate) chosen: Vec<(usize, f64)>,
    /// Pressure-sweep candidate buffer (per free task).
    pub(crate) sweep: Vec<(usize, f64)>,
    /// Per-step plain processor list.
    pub(crate) procs: Vec<usize>,
    /// Matched placement: per-destination-replica arrival times.
    pub(crate) arrival: Vec<f64>,
    /// Matched placement: sender replicas of the current predecessor.
    pub(crate) senders: Vec<Replica>,
    /// Matched placement: the Section 4.2 bipartite graph.
    pub(crate) graph: BipartiteGraph,
    /// Matched placement: forced internal pairs.
    pub(crate) forced: Vec<(usize, usize)>,
    /// Matched placement: selected pairs of the current predecessor.
    pub(crate) pairs: Vec<(usize, usize)>,
    /// Greedy selector scratch.
    pub(crate) greedy: GreedyScratch,
    /// Bottleneck selector scratch (binary search + Hopcroft–Karp).
    pub(crate) bottleneck: BottleneckScratch,
}

impl ScheduleWorkspace {
    /// Creates an empty workspace; buffers are sized lazily by the first
    /// run.
    pub fn new() -> Self {
        Self::default()
    }

    /// The schedule produced by the most recent run.
    pub fn schedule(&self) -> &Schedule {
        &self.sched
    }

    /// Moves the most recent schedule out, leaving an empty one behind
    /// (the next run then re-grows the arenas — use [`Clone`] on
    /// [`ScheduleWorkspace::schedule`] instead to stay allocation-free).
    pub fn take_schedule(&mut self) -> Schedule {
        std::mem::take(&mut self.sched)
    }

    /// Resets every buffer for a run over `inst` at `epsilon`, reusing
    /// capacity. Also recomputes the average costs and bottom levels.
    ///
    /// `floors` seeds the per-processor ready times from a persistent
    /// occupancy state (see [`crate::schedule_onto`]): processor `j`
    /// starts at `floors[j]` instead of `0.0`. `None` — or all-zero
    /// floors — is bit-identical to the historical empty-platform run.
    pub(crate) fn prepare(&mut self, inst: &Instance, epsilon: usize, floors: Option<&[f64]>) {
        let dag = &inst.dag;
        let v = dag.num_tasks();
        let m = inst.num_procs();
        self.sched.reset(v, m, epsilon);
        self.ready_lb.clear();
        self.ready_ub.clear();
        match floors {
            Some(f) => {
                assert_eq!(f.len(), m, "occupancy floors must cover all processors");
                self.ready_lb.extend_from_slice(f);
                self.ready_ub.extend_from_slice(f);
            }
            None => {
                self.ready_lb.resize(m, 0.0);
                self.ready_ub.resize(m, 0.0);
            }
        }
        self.arrive_lb.clear();
        self.arrive_lb.resize(dag.num_edges() * m, f64::INFINITY);
        self.avg.fill(inst);
        crate::levels::bottom_levels_into(inst, &self.avg, &mut self.bl);
        self.waiting_preds.clear();
        self.waiting_preds
            .extend((0..v as u32).map(|t| dag.in_degree(TaskId(t)) as u32));
        self.alpha.clear();
        self.tl.clear();
        self.tl.resize(v, 0.0);
        self.free.clear();
        self.token.clear();
        self.token.resize(v, 0);
        self.pressure.dups.clear();
        self.row.clear();
        self.chosen.clear();
        self.sweep.clear();
        self.procs.clear();
        self.arrival.clear();
        self.senders.clear();
        self.forced.clear();
        self.pairs.clear();
    }
}
