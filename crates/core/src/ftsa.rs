//! FTSA — the Fault Tolerant Scheduling Algorithm (Section 4.1).
//!
//! A greedy list-scheduling heuristic driven by *task criticalness*: the
//! priority of a free task is `tℓ(t) + bℓ(t)`, the length of the longest
//! path through `t` in the partially mapped DAG. At every step the
//! critical free task is popped from the AVL-backed list `α` and mapped
//! onto the `ε + 1` processors that minimize its finish time (equation 1);
//! successors that become free enter `α` with refreshed priorities.
//!
//! ```text
//! Algorithm 4.1 (FTSA)
//!  1: ε ← maximum number of failures supported
//!  2: compute bℓ(t); tℓ(t) ← 0 for entry tasks
//!  4: S ← ∅; U ← V
//!  5: put entry tasks in α
//!  6: while U ≠ ∅:
//!  7:   t ← H(α)
//!  8:   compute F(t, P_j) for all j            (equation 1)
//!  9:   keep the ε+1 processors minimizing F   (the set P^(ε+1))
//! 10:   schedule t on them
//! 11:   update priorities of t's successors
//! 12:   put t's free successors in α
//! ```
//!
//! Complexity `O(e·m² + v·log ω)` (Theorem 4.2) — realized with a much
//! smaller constant by the [`crate::pipeline`]'s incremental arrival
//! caches. With `ε = 0` this is the fault-free variant used as the
//! baseline in the paper's figures.
//!
//! Since the pipeline refactor this module is a *named configuration*:
//! criticalness priority × best-finish placement × all-to-all
//! communication (see [`ListScheduler`]). The golden suite pins that it
//! still produces bit-identical schedules to the original loop.

use crate::error::ScheduleError;
use crate::pipeline::{CommAxis, ListScheduler, PlacementAxis, PriorityAxis};
use crate::schedule::Schedule;
use platform::Instance;
use rand::Rng;

/// Runs FTSA on `inst`, tolerating `epsilon` fail-stop failures.
///
/// `rng` drives the paper's random tie-breaking among equal-priority free
/// tasks; all other decisions are deterministic.
pub fn ftsa(
    inst: &Instance,
    epsilon: usize,
    rng: &mut impl Rng,
) -> Result<Schedule, ScheduleError> {
    ftsa_impl(inst, epsilon, rng, None, PriorityPolicy::Criticalness)
}

/// The free-task priority driving `H(α)` — the design choice Section 4.1
/// argues for. The ablation benches compare both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityPolicy {
    /// The paper's *criticalness* `tℓ(t) + bℓ(t)` (dynamic top level +
    /// static bottom level): "the greater the criticalness, the more
    /// work is to be performed along the path containing that task".
    Criticalness,
    /// Static bottom level only (a HEFT-style upward rank): cheaper to
    /// maintain but blind to where predecessors actually landed.
    BottomLevelOnly,
}

/// FTSA with an explicit priority policy (ablation entry point).
pub fn ftsa_with_policy(
    inst: &Instance,
    epsilon: usize,
    policy: PriorityPolicy,
    rng: &mut impl Rng,
) -> Result<Schedule, ScheduleError> {
    ftsa_impl(inst, epsilon, rng, None, policy)
}

/// FTSA core with the Section 4.3 per-task deadline check: if the
/// guaranteed finish time of the scheduled task on its `ε+1` processors
/// exceeds its deadline, the run aborts with
/// [`ScheduleError::DeadlineViolated`]
/// ("Failed to satisfy both criteria simultaneously").
pub(crate) fn ftsa_impl(
    inst: &Instance,
    epsilon: usize,
    rng: &mut impl Rng,
    deadlines: Option<&[f64]>,
    policy: PriorityPolicy,
) -> Result<Schedule, ScheduleError> {
    let priority = match policy {
        PriorityPolicy::Criticalness => PriorityAxis::Criticalness,
        PriorityPolicy::BottomLevelOnly => PriorityAxis::BottomLevel,
    };
    ListScheduler::new(priority, PlacementAxis::BestFinish, CommAxis::AllToAll)
        .run_with_deadlines(inst, epsilon, rng, deadlines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::{ExecutionMatrix, FailureScenario, Platform};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use taskgraph::{DagBuilder, TaskId};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xF75A)
    }

    /// Homogeneous 3-processor platform, diamond DAG.
    fn diamond_instance() -> Instance {
        let mut b = DagBuilder::new();
        let t: Vec<TaskId> = (0..4).map(|_| b.add_task(10.0)).collect();
        b.add_edge(t[0], t[1], 5.0);
        b.add_edge(t[0], t[2], 5.0);
        b.add_edge(t[1], t[3], 5.0);
        b.add_edge(t[2], t[3], 5.0);
        let dag = b.build().unwrap();
        let plat = Platform::uniform_delay(3, 1.0);
        let exec = ExecutionMatrix::consistent(&dag, &[1.0, 1.0, 1.0]);
        Instance::new(dag, plat, exec)
    }

    #[test]
    fn epsilon_zero_places_one_replica_each() {
        let inst = diamond_instance();
        let s = ftsa(&inst, 0, &mut rng()).unwrap();
        for t in inst.dag.tasks() {
            assert_eq!(s.replicas_of(t).len(), 1);
        }
        assert_eq!(s.epsilon, 0);
        // Chain t0 → t1 → t3 with works 10 each: latency >= 30.
        assert!(s.latency_lower_bound() >= 30.0);
    }

    #[test]
    fn replicas_on_distinct_processors() {
        let inst = diamond_instance();
        for eps in [0usize, 1, 2] {
            let s = ftsa(&inst, eps, &mut rng()).unwrap();
            for t in inst.dag.tasks() {
                let reps = s.replicas_of(t);
                assert_eq!(reps.len(), eps + 1);
                let procs: std::collections::HashSet<_> = reps.iter().map(|r| r.proc).collect();
                assert_eq!(procs.len(), eps + 1, "Proposition 4.1 violated");
            }
        }
    }

    #[test]
    fn too_few_processors_rejected() {
        let inst = diamond_instance();
        let err = ftsa(&inst, 3, &mut rng()).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::NotEnoughProcessors {
                epsilon: 3,
                procs: 3
            }
        );
    }

    #[test]
    fn lower_bound_below_upper_bound() {
        let inst = diamond_instance();
        for eps in [0usize, 1, 2] {
            let s = ftsa(&inst, eps, &mut rng()).unwrap();
            assert!(
                s.latency_lower_bound() <= s.latency_upper_bound() + 1e-9,
                "M* must not exceed M (eps={eps})"
            );
        }
    }

    #[test]
    fn replication_does_not_cheapen_latency() {
        // More tolerated failures can only increase the optimistic bound
        // on a fixed platform (more replicas compete for processors).
        let inst = diamond_instance();
        let l0 = ftsa(&inst, 0, &mut rng()).unwrap().latency_lower_bound();
        let l2 = ftsa(&inst, 2, &mut rng()).unwrap().latency_lower_bound();
        assert!(l2 >= l0 - 1e-9);
    }

    #[test]
    fn schedule_order_is_topological() {
        let inst = diamond_instance();
        let s = ftsa(&inst, 1, &mut rng()).unwrap();
        let mut pos = vec![usize::MAX; inst.num_tasks()];
        for (i, t) in s.schedule_order.iter().enumerate() {
            pos[t.index()] = i;
        }
        for (_, src, dst, _) in inst.dag.edge_list() {
            assert!(pos[src.index()] < pos[dst.index()]);
        }
    }

    #[test]
    fn per_processor_intervals_disjoint() {
        let inst = diamond_instance();
        let s = ftsa(&inst, 2, &mut rng()).unwrap();
        for j in 0..s.num_procs() {
            let mut last_lb = 0.0f64;
            let mut last_ub = 0.0f64;
            for (t, k) in s.proc_order(j) {
                let r = s.replicas_of(t)[k];
                assert!(r.start_lb >= last_lb - 1e-9);
                assert!(r.start_ub >= last_ub - 1e-9);
                last_lb = r.finish_lb;
                last_ub = r.finish_ub;
            }
        }
    }

    #[test]
    fn heterogeneous_prefers_fast_processor_when_free() {
        // One fast processor (speed 10), two slow; a single task must land
        // its first replica on the fast one.
        let mut b = DagBuilder::new();
        b.add_task(100.0);
        let dag = b.build().unwrap();
        let plat = Platform::uniform_delay(3, 1.0);
        let exec = ExecutionMatrix::consistent(&dag, &[1.0, 10.0, 1.0]);
        let inst = Instance::new(dag, plat, exec);
        let s = ftsa(&inst, 1, &mut rng()).unwrap();
        let reps = s.replicas_of(TaskId(0));
        assert_eq!(reps[0].proc.index(), 1, "fastest processor first");
        assert_eq!(reps[0].finish_lb, 10.0);
        assert_eq!(reps[1].finish_lb, 100.0);
    }

    #[test]
    fn intra_processor_communication_is_free() {
        // Two-task chain on 2 procs, eps=0: both tasks should land on the
        // same (equally fast) processor because the communication then
        // costs nothing.
        let mut b = DagBuilder::new();
        let a = b.add_task(10.0);
        let c = b.add_task(10.0);
        b.add_edge(a, c, 1000.0);
        let dag = b.build().unwrap();
        let plat = Platform::uniform_delay(2, 1.0);
        let exec = ExecutionMatrix::consistent(&dag, &[1.0, 1.0]);
        let inst = Instance::new(dag, plat, exec);
        let s = ftsa(&inst, 0, &mut rng()).unwrap();
        assert_eq!(
            s.replicas_of(a)[0].proc,
            s.replicas_of(c)[0].proc,
            "huge volume must force collocation"
        );
        assert_eq!(s.latency_lower_bound(), 20.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = diamond_instance();
        let a = ftsa(&inst, 1, &mut StdRng::seed_from_u64(5)).unwrap();
        let b = ftsa(&inst, 1, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(a.replicas, b.replicas);
        assert_eq!(a.schedule_order, b.schedule_order);
    }

    #[test]
    fn empty_dag() {
        let dag = DagBuilder::new().build().unwrap();
        let plat = Platform::uniform_delay(2, 1.0);
        let exec = ExecutionMatrix::from_fn(0, 2, |_, _| 1.0);
        let inst = Instance::new(dag, plat, exec);
        let s = ftsa(&inst, 1, &mut rng()).unwrap();
        assert_eq!(s.latency_lower_bound(), 0.0);
        assert_eq!(s.latency_upper_bound(), 0.0);
    }

    #[test]
    fn priority_policies_both_produce_valid_schedules() {
        use platform::gen::{paper_instance, PaperInstanceConfig};
        let mut r = StdRng::seed_from_u64(404);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        for policy in [
            PriorityPolicy::Criticalness,
            PriorityPolicy::BottomLevelOnly,
        ] {
            let s = ftsa_with_policy(&inst, 2, policy, &mut StdRng::seed_from_u64(1)).unwrap();
            crate::validate::validate(&inst, &s).unwrap();
        }
    }

    #[test]
    fn priority_ablation_static_rank_wins_under_append_only_placement() {
        // Ablation finding (documented in EXPERIMENTS.md): the paper's
        // dynamic criticalness tℓ+bℓ pops late-arriving tasks first;
        // under FTSA's append-only processor timelines (no insertion into
        // idle gaps) those tasks reserve processors early and create
        // holes, so the *static* bottom-level order produces shorter
        // schedules on paper-style instances. We pin the direction and a
        // sane magnitude so a regression in either policy is caught.
        use platform::gen::{paper_instance, PaperInstanceConfig};
        let mut crit_total = 0.0;
        let mut static_total = 0.0;
        for seed in 0..6u64 {
            let mut r = StdRng::seed_from_u64(seed + 700);
            let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
            crit_total += ftsa_with_policy(
                &inst,
                1,
                PriorityPolicy::Criticalness,
                &mut StdRng::seed_from_u64(seed),
            )
            .unwrap()
            .latency_lower_bound();
            static_total += ftsa_with_policy(
                &inst,
                1,
                PriorityPolicy::BottomLevelOnly,
                &mut StdRng::seed_from_u64(seed),
            )
            .unwrap()
            .latency_lower_bound();
        }
        assert!(
            static_total < crit_total,
            "expected the static rank to win here: {static_total} vs {crit_total}"
        );
        assert!(
            crit_total <= static_total * 2.0,
            "criticalness should stay within 2x: {crit_total} vs {static_total}"
        );
    }

    #[test]
    fn survives_scenario_sanity() {
        // Smoke-test that a schedule plus a failure scenario type-check
        // together; full semantics live in the simulator crate.
        let inst = diamond_instance();
        let s = ftsa(&inst, 1, &mut rng()).unwrap();
        let scen = FailureScenario::uniform(&mut rng(), 3, 1);
        assert!(scen.len() <= s.epsilon);
    }
}
