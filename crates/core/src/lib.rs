//! Fault-tolerant scheduling of precedence task graphs on heterogeneous
//! platforms.
//!
//! This crate implements the contribution of Benoit, Hakem and Robert,
//! *Fault Tolerant Scheduling of Precedence Task Graphs on Heterogeneous
//! Platforms* (INRIA RR-6418, IPDPS 2008), restructured around one
//! **unified list-scheduling pipeline**.
//!
//! # Architecture
//!
//! All heuristics share a single loop in [`pipeline`]: *select a free
//! task → pick `ε + 1` processors → place replicas → refresh
//! successors*. A [`pipeline::ListScheduler`] fixes the three orthogonal
//! axes of that loop:
//!
//! * **priority** ([`pipeline::PriorityAxis`]) — FTSA's criticalness
//!   `tℓ + bℓ` on a heap-backed free list `α`, the static bottom level
//!   alone, or FTBAR's schedule-pressure sweep;
//! * **placement** ([`pipeline::PlacementAxis`]) — the `ε + 1`
//!   best-finish processors of equation (1), or minimize-start-time
//!   selection with the optional Ahmad–Kwok duplication pass;
//! * **communication** ([`pipeline::CommAxis`]) — all-to-all replica
//!   messaging, or MC-FTSA's robust one-to-one matching (greedy or
//!   bottleneck-optimal, via `ftsched-matching`).
//!
//! Underneath, the shared placement engine maintains **incremental
//! per-(edge, processor) arrival caches**: placing a replica folds its
//! contribution into each outgoing edge in `O(succs · m)`, and the
//! arrival terms of equations (1)/(3) are then read back in `O(preds)`
//! per `(task, processor)` query instead of being recomputed from every
//! predecessor replica — the `O(e·m²)` bound of Theorem 4.2 with a much
//! smaller constant (see `engine.rs` for the cache invariants).
//!
//! All run state — the flat-arena [`Schedule`], the arrival cache, the
//! free list and every per-step scratch buffer — lives in a
//! [`ScheduleWorkspace`]: [`schedule_into`] reuses it across runs with
//! **zero heap allocations** in the steady state (see the [`workspace`]
//! module docs for the contract; `tests/alloc_counter.rs` at the repo
//! root pins it with a counting allocator).
//!
//! Placement can start from a **pre-occupied platform**: [`schedule_onto`]
//! takes a [`platform::OccupancyTimeline`] and seeds every processor's
//! ready time from its release floor instead of `0.0`, which is what the
//! streaming (online-arrival) scenario family builds on. The occupancy
//! contract is strict — an empty timeline reduces bit-for-bit to
//! [`schedule_into`], so the golden suite pins both paths at once — and
//! floor threading adds nothing to the steady-state allocation count.
//!
//! The paper's algorithms are *named configurations* of the pipeline
//! ([`Algorithm::scheduler`]), pinned bit-for-bit to the original
//! implementations by the golden suite (`tests/golden.rs`):
//!
//! * [`ftsa`] — **FTSA** (Section 4.1): criticalness × best-finish ×
//!   all-to-all. Places `ε + 1` active replicas of every task on
//!   distinct processors, tolerating `ε` fail-stop failures
//!   (Theorem 4.1) in time `O(e·m² + v·log ω)` (Theorem 4.2).
//! * [`mc_ftsa`] — **MC-FTSA** (Section 4.2): criticalness ×
//!   best-finish × matched. Cuts the replication-induced messages from
//!   `e(ε+1)²` to `e(ε+1)` via a robust one-to-one matching per edge
//!   (Proposition 4.3).
//! * [`ftbar`] — **FTBAR** (Girault, Kalla, Sighireanu, Sorel,
//!   DSN 2003), the baseline: pressure × minimize-start-time(+dup) ×
//!   all-to-all.
//!
//! Cross-combinations that used to require a fourth copy of the loop are
//! now one-liners — see [`Algorithm::FtsaPressure`], [`Algorithm::FtsaMst`]
//! and [`Algorithm::FtbarMatched`].
//!
//! Supporting modules: [`bounds`] / [`validate`] (the latency bounds
//! `M*` / `M` of eqs. (2)/(4) and structural validation), [`bicriteria`]
//! (the Section 4.3 drivers), [`levels`], [`stats`].
//!
//! The entry point is [`schedule()`](fn@crate::schedule):
//!
//! ```
//! use ftsched_core::{schedule, Algorithm};
//! use platform::gen::{paper_instance, PaperInstanceConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let inst = paper_instance(&mut rng, &PaperInstanceConfig::default());
//! let sched = schedule(&inst, 2, Algorithm::Ftsa, &mut rng).unwrap();
//! assert!(sched.latency_lower_bound() <= sched.latency_upper_bound());
//! ftsched_core::validate::validate(&inst, &sched).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bicriteria;
pub mod bounds;
pub(crate) mod engine;
pub mod error;
pub mod ftbar;
pub mod ftsa;
pub mod levels;
pub mod mc_ftsa;
pub mod pipeline;
pub mod schedule;
pub mod stats;
pub mod validate;
pub mod workspace;

pub use error::ScheduleError;
pub use schedule::{CommSelection, Replica, Schedule};
pub use workspace::ScheduleWorkspace;

use crate::pipeline::{CommAxis, ListScheduler, PlacementAxis, PriorityAxis};
use platform::Instance;
use rand::Rng;

/// Which scheduling heuristic to run — a named configuration of the
/// [`pipeline`] (see [`Algorithm::scheduler`] for the exact axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// FTSA (Section 4.1), all-to-all replica communication.
    Ftsa,
    /// MC-FTSA with the greedy communication selector (the variant used
    /// in the paper's experiments).
    McFtsaGreedy,
    /// MC-FTSA with the bottleneck-optimal communication selector.
    McFtsaBottleneck,
    /// FTBAR (Section 5), the baseline.
    Ftbar,
    /// Pressure-driven FTSA: FTBAR's schedule-pressure task selection
    /// with FTSA's best-finish placement and all-to-all communication.
    FtsaPressure,
    /// FTSA with the Ahmad–Kwok minimize-start-time duplication pass:
    /// criticalness selection, min-start placement with duplication.
    FtsaMst,
    /// FTBAR with MC-FTSA's matched communications (greedy selector).
    /// Matched comm fixes one sender per replica, so the duplication
    /// pass is disabled (see the [`pipeline`] composition rule).
    FtbarMatched,
}

impl Algorithm {
    /// Every algorithm, in canonical order: the four paper algorithms
    /// first, then the pipeline cross-combinations.
    pub const ALL: [Algorithm; 7] = [
        Algorithm::Ftsa,
        Algorithm::McFtsaGreedy,
        Algorithm::McFtsaBottleneck,
        Algorithm::Ftbar,
        Algorithm::FtsaPressure,
        Algorithm::FtsaMst,
        Algorithm::FtbarMatched,
    ];

    /// The four algorithms evaluated in the paper, whose schedules are
    /// pinned bit-for-bit by the golden suite.
    pub const PAPER: [Algorithm; 4] = [
        Algorithm::Ftsa,
        Algorithm::McFtsaGreedy,
        Algorithm::McFtsaBottleneck,
        Algorithm::Ftbar,
    ];

    /// Short display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Ftsa => "FTSA",
            Algorithm::McFtsaGreedy => "MC-FTSA",
            Algorithm::McFtsaBottleneck => "MC-FTSA(bn)",
            Algorithm::Ftbar => "FTBAR",
            Algorithm::FtsaPressure => "P-FTSA",
            Algorithm::FtsaMst => "FTSA+MST",
            Algorithm::FtbarMatched => "MC-FTBAR",
        }
    }

    /// The CLI token parsed by [`Algorithm::from_str`](std::str::FromStr).
    pub fn key(self) -> &'static str {
        match self {
            Algorithm::Ftsa => "ftsa",
            Algorithm::McFtsaGreedy => "mc-ftsa",
            Algorithm::McFtsaBottleneck => "mc-ftsa-bn",
            Algorithm::Ftbar => "ftbar",
            Algorithm::FtsaPressure => "p-ftsa",
            Algorithm::FtsaMst => "ftsa-mst",
            Algorithm::FtbarMatched => "mc-ftbar",
        }
    }

    /// The pipeline configuration this name stands for.
    pub fn scheduler(self) -> ListScheduler {
        let best_finish = PlacementAxis::BestFinish;
        let mst = PlacementAxis::MinStart { duplicate: true };
        match self {
            Algorithm::Ftsa => {
                ListScheduler::new(PriorityAxis::Criticalness, best_finish, CommAxis::AllToAll)
            }
            Algorithm::McFtsaGreedy => ListScheduler::new(
                PriorityAxis::Criticalness,
                best_finish,
                CommAxis::Matched(mc_ftsa::Selector::Greedy),
            ),
            Algorithm::McFtsaBottleneck => ListScheduler::new(
                PriorityAxis::Criticalness,
                best_finish,
                CommAxis::Matched(mc_ftsa::Selector::Bottleneck),
            ),
            Algorithm::Ftbar => ListScheduler::new(PriorityAxis::Pressure, mst, CommAxis::AllToAll),
            Algorithm::FtsaPressure => {
                ListScheduler::new(PriorityAxis::Pressure, best_finish, CommAxis::AllToAll)
            }
            Algorithm::FtsaMst => {
                ListScheduler::new(PriorityAxis::Criticalness, mst, CommAxis::AllToAll)
            }
            Algorithm::FtbarMatched => ListScheduler::new(
                PriorityAxis::Pressure,
                PlacementAxis::MinStart { duplicate: false },
                CommAxis::Matched(mc_ftsa::Selector::Greedy),
            ),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Serialized as the CLI token ([`Algorithm::key`]) — the form campaign
/// spec files use (`"algorithms": ["ftsa", "mc-ftbar"]`).
impl serde::Serialize for Algorithm {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.key().to_string())
    }
}

impl serde::Deserialize for Algorithm {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::String(s) => s.parse().map_err(serde::Error::custom),
            other => Err(serde::Error::custom(format!(
                "expected algorithm name string, got {}",
                other.kind()
            ))),
        }
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    /// Parses the CLI token ([`Algorithm::key`]) or the display name
    /// ([`Algorithm::name`]), case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        Algorithm::ALL
            .into_iter()
            .find(|a| a.key() == lower || a.name().to_ascii_lowercase() == lower)
            .ok_or_else(|| {
                let keys: Vec<&str> = Algorithm::ALL.iter().map(|a| a.key()).collect();
                format!(
                    "unknown algorithm `{s}` (expected one of: {})",
                    keys.join("|")
                )
            })
    }
}

/// Schedules `inst` tolerating `epsilon` fail-stop processor failures
/// with the chosen heuristic. `rng` drives random tie-breaking only.
///
/// `epsilon = 0` yields the *fault-free* variant of each algorithm (one
/// replica per task, no replication overhead).
pub fn schedule(
    inst: &Instance,
    epsilon: usize,
    algorithm: Algorithm,
    rng: &mut impl Rng,
) -> Result<Schedule, ScheduleError> {
    algorithm.scheduler().run(inst, epsilon, rng)
}

/// [`schedule()`](fn@crate::schedule) reusing a caller-held
/// [`ScheduleWorkspace`]: after the first call on a given instance
/// shape, scheduling performs no heap allocation (see the
/// [`workspace`] module docs for the exact contract). The schedule is
/// borrowed from the workspace — clone it to keep it past the next run.
///
/// ```
/// use ftsched_core::{schedule_into, Algorithm, ScheduleWorkspace};
/// use platform::gen::{paper_instance, PaperInstanceConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let inst = paper_instance(&mut rng, &PaperInstanceConfig::default());
/// let mut ws = ScheduleWorkspace::new();
/// for eps in [0, 1, 2] {
///     let sched = schedule_into(&inst, eps, Algorithm::Ftsa, &mut rng, &mut ws).unwrap();
///     assert!(sched.latency_lower_bound() <= sched.latency_upper_bound());
/// }
/// ```
pub fn schedule_into<'w>(
    inst: &Instance,
    epsilon: usize,
    algorithm: Algorithm,
    rng: &mut impl Rng,
    ws: &'w mut ScheduleWorkspace,
) -> Result<&'w Schedule, ScheduleError> {
    algorithm.scheduler().run_into(inst, epsilon, rng, ws)
}

/// [`schedule_into`] onto a **pre-occupied platform**: every
/// per-processor ready time starts from the occupancy timeline's
/// release floor instead of `0.0`, so the eq. (1)/(3) placement queries
/// and the produced replica times live in the stream's absolute clock.
///
/// Contract (pinned by the golden suite and the occupancy proptests):
/// an [`OccupancyTimeline::is_empty`](platform::OccupancyTimeline::is_empty)
/// state is **bit-identical** to [`schedule_into`]. The schedule is not
/// folded back into `occ`; callers (e.g. the simulator's streaming
/// driver) insert the replica intervals they consider committed.
///
/// ```
/// use ftsched_core::{schedule_into, schedule_onto, Algorithm, ScheduleWorkspace};
/// use platform::gen::{paper_instance, PaperInstanceConfig};
/// use platform::OccupancyTimeline;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let inst = paper_instance(&mut rng, &PaperInstanceConfig::default());
/// let mut ws = ScheduleWorkspace::new();
/// let mut occ = OccupancyTimeline::new(inst.num_procs());
/// occ.advance(10.0); // the DAG arrives at t = 10
/// let sched = schedule_onto(&inst, 1, Algorithm::Ftsa, &mut StdRng::seed_from_u64(7), &occ, &mut ws)
///     .unwrap();
/// assert!(sched.latency_lower_bound() >= 10.0);
/// ```
pub fn schedule_onto<'w>(
    inst: &Instance,
    epsilon: usize,
    algorithm: Algorithm,
    rng: &mut impl Rng,
    occ: &platform::OccupancyTimeline,
    ws: &'w mut ScheduleWorkspace,
) -> Result<&'w Schedule, ScheduleError> {
    algorithm.scheduler().run_onto(inst, epsilon, rng, occ, ws)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_str_round_trips_every_algorithm() {
        for alg in Algorithm::ALL {
            assert_eq!(alg.key().parse::<Algorithm>().unwrap(), alg);
            assert_eq!(alg.name().parse::<Algorithm>().unwrap(), alg);
            assert_eq!(
                alg.name()
                    .to_ascii_lowercase()
                    .parse::<Algorithm>()
                    .unwrap(),
                alg
            );
        }
        assert!("nope".parse::<Algorithm>().is_err());
        assert_eq!(format!("{}", Algorithm::FtbarMatched), "MC-FTBAR");
    }

    #[test]
    fn all_contains_paper_prefix() {
        assert_eq!(&Algorithm::ALL[..4], &Algorithm::PAPER[..]);
    }

    #[test]
    fn algorithm_serde_round_trips_as_key_string() {
        for alg in Algorithm::ALL {
            let v = serde::Serialize::to_value(&alg);
            assert_eq!(v, serde::Value::String(alg.key().to_string()));
            let back: Algorithm = serde::Deserialize::from_value(&v).unwrap();
            assert_eq!(back, alg);
        }
        let bad = serde::Value::String("nope".into());
        assert!(<Algorithm as serde::Deserialize>::from_value(&bad).is_err());
    }
}
