//! Fault-tolerant scheduling of precedence task graphs on heterogeneous
//! platforms.
//!
//! This crate implements the contribution of Benoit, Hakem and Robert,
//! *Fault Tolerant Scheduling of Precedence Task Graphs on Heterogeneous
//! Platforms* (INRIA RR-6418, IPDPS 2008):
//!
//! * [`ftsa`] — **FTSA**, a greedy list-scheduling heuristic driven by
//!   task *criticalness* (dynamic top level + static bottom level) that
//!   places `ε + 1` active replicas of every task on distinct processors,
//!   guaranteeing a valid schedule under up to `ε` fail-stop failures
//!   (Theorem 4.1) in time `O(e·m² + v·log ω)` (Theorem 4.2).
//! * [`mc_ftsa`] — **MC-FTSA**, the Minimum-Communications variant, which
//!   cuts the number of replication-induced messages from `e(ε+1)²` to
//!   `e(ε+1)` by selecting a robust one-to-one communication matching per
//!   precedence edge (Proposition 4.3), via either the greedy or the
//!   bottleneck-optimal selector.
//! * [`ftbar`] — **FTBAR** (Girault, Kalla, Sighireanu, Sorel, DSN 2003),
//!   the paper's direct competitor, reimplemented as the baseline:
//!   schedule-pressure driven selection plus the Ahmad–Kwok
//!   minimize-start-time duplication pass.
//! * [`bounds`] / [`validate`] — the latency bounds `M*` (eq. 2) and `M`
//!   (eq. 4) and structural schedule validation (Propositions 4.1/4.3).
//! * [`bicriteria`] — the Section 4.3 drivers: maximize tolerated
//!   failures under a latency budget, or check both criteria at once via
//!   per-task deadlines.
//!
//! The entry point is [`schedule()`](fn@crate::schedule):
//!
//! ```
//! use ftsched_core::{schedule, Algorithm};
//! use platform::gen::{paper_instance, PaperInstanceConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let inst = paper_instance(&mut rng, &PaperInstanceConfig::default());
//! let sched = schedule(&inst, 2, Algorithm::Ftsa, &mut rng).unwrap();
//! assert!(sched.latency_lower_bound() <= sched.latency_upper_bound());
//! ftsched_core::validate::validate(&inst, &sched).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bicriteria;
pub mod bounds;
pub(crate) mod engine;
pub mod error;
pub mod ftbar;
pub mod ftsa;
pub mod levels;
pub mod mc_ftsa;
pub mod schedule;
pub mod stats;
pub mod validate;

pub use error::ScheduleError;
pub use schedule::{CommSelection, Replica, Schedule};

use platform::Instance;
use rand::Rng;

/// Which scheduling heuristic to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// FTSA (Section 4.1), all-to-all replica communication.
    Ftsa,
    /// MC-FTSA with the greedy communication selector (the variant used
    /// in the paper's experiments).
    McFtsaGreedy,
    /// MC-FTSA with the bottleneck-optimal communication selector.
    McFtsaBottleneck,
    /// FTBAR (Section 5), the baseline.
    Ftbar,
}

impl Algorithm {
    /// Short display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Ftsa => "FTSA",
            Algorithm::McFtsaGreedy => "MC-FTSA",
            Algorithm::McFtsaBottleneck => "MC-FTSA(bn)",
            Algorithm::Ftbar => "FTBAR",
        }
    }
}

/// Schedules `inst` tolerating `epsilon` fail-stop processor failures
/// with the chosen heuristic. `rng` drives random tie-breaking only.
///
/// `epsilon = 0` yields the *fault-free* variant of each algorithm (one
/// replica per task, no replication overhead).
pub fn schedule(
    inst: &Instance,
    epsilon: usize,
    algorithm: Algorithm,
    rng: &mut impl Rng,
) -> Result<Schedule, ScheduleError> {
    match algorithm {
        Algorithm::Ftsa => ftsa::ftsa(inst, epsilon, rng),
        Algorithm::McFtsaGreedy => mc_ftsa::mc_ftsa(inst, epsilon, mc_ftsa::Selector::Greedy, rng),
        Algorithm::McFtsaBottleneck => {
            mc_ftsa::mc_ftsa(inst, epsilon, mc_ftsa::Selector::Bottleneck, rng)
        }
        Algorithm::Ftbar => ftbar::ftbar(inst, epsilon, rng),
    }
}
