//! Static bottom levels and average-cost helpers (Section 4.1).
//!
//! The *static bottom level* `bℓ(t)` is the length of the longest path
//! from `t` to an exit, measured with the **average** execution time
//! `Ē(t) = (Σ_j E(t, P_j)) / m` and the **average** communication cost
//! `W̄(t, t*) = V(t, t*) · d̄` where `d̄` is the mean unit-data delay over
//! distinct processor pairs:
//!
//! ```text
//! bℓ(t) = Ē(t)                                        if Γ⁺(t) = ∅
//! bℓ(t) = max_{t* ∈ Γ⁺(t)} { Ē(t) + W̄(t, t*) + bℓ(t*) }  otherwise
//! ```
//!
//! `bℓ` stays fixed throughout the run ("static"), while the top level
//! `tℓ` is refreshed as predecessors get mapped ("dynamic") — see the
//! FTSA module.

use platform::Instance;

/// Precomputed average costs of an instance.
#[derive(Debug, Clone, Default)]
pub struct AverageCosts {
    /// `Ē(t)` per task.
    pub exec: Vec<f64>,
    /// The platform's mean inter-processor unit delay `d̄`.
    pub mean_delay: f64,
}

impl AverageCosts {
    /// Computes the averages for `inst`.
    pub fn new(inst: &Instance) -> Self {
        let mut costs = AverageCosts {
            exec: Vec::new(),
            mean_delay: 0.0,
        };
        costs.fill(inst);
        costs
    }

    /// Recomputes the averages for `inst` in place, reusing the `exec`
    /// buffer (allocation-free once its capacity covers the task count).
    pub fn fill(&mut self, inst: &Instance) {
        self.exec.clear();
        self.exec
            .extend((0..inst.num_tasks()).map(|t| inst.exec.average(t)));
        self.mean_delay = inst.platform.average_delay();
    }

    /// Average communication cost `W̄` of shipping `volume` units.
    #[inline]
    pub fn comm(&self, volume: f64) -> f64 {
        volume * self.mean_delay
    }
}

/// Computes the static bottom levels `bℓ(t)` for every task, in reverse
/// topological order.
pub fn bottom_levels(inst: &Instance, avg: &AverageCosts) -> Vec<f64> {
    let mut bl = Vec::new();
    bottom_levels_into(inst, avg, &mut bl);
    bl
}

/// [`bottom_levels`] writing into a caller-provided buffer (cleared
/// first) — the allocation-free form the scheduler workspace uses.
pub fn bottom_levels_into(inst: &Instance, avg: &AverageCosts, bl: &mut Vec<f64>) {
    let dag = &inst.dag;
    bl.clear();
    bl.resize(dag.num_tasks(), 0.0);
    for &t in dag.topological_order().iter().rev() {
        let e = avg.exec[t.index()];
        let succs = dag.succs(t);
        bl[t.index()] = if succs.is_empty() {
            e
        } else {
            succs
                .iter()
                .map(|&(s, eid)| e + avg.comm(dag.volume(eid)) + bl[s.index()])
                .fold(f64::NEG_INFINITY, f64::max)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::{ExecutionMatrix, Instance, Platform};
    use taskgraph::DagBuilder;

    /// chain a --(v=10)--> b --(v=20)--> c, works 2/4/6, two procs with
    /// speeds 1 and 2, uniform delay 0.5.
    fn chain_instance() -> Instance {
        let mut b = DagBuilder::new();
        let t0 = b.add_task(2.0);
        let t1 = b.add_task(4.0);
        let t2 = b.add_task(6.0);
        b.add_edge(t0, t1, 10.0);
        b.add_edge(t1, t2, 20.0);
        let dag = b.build().unwrap();
        let plat = Platform::uniform_delay(2, 0.5);
        let exec = ExecutionMatrix::consistent(&dag, &[1.0, 2.0]);
        Instance::new(dag, plat, exec)
    }

    #[test]
    fn averages() {
        let inst = chain_instance();
        let avg = AverageCosts::new(&inst);
        // Ē(t0) = (2 + 1)/2 = 1.5 etc.
        assert_eq!(avg.exec, vec![1.5, 3.0, 4.5]);
        assert_eq!(avg.mean_delay, 0.5);
        assert_eq!(avg.comm(10.0), 5.0);
    }

    #[test]
    fn bottom_levels_of_chain() {
        let inst = chain_instance();
        let avg = AverageCosts::new(&inst);
        let bl = bottom_levels(&inst, &avg);
        // bl(t2) = 4.5
        // bl(t1) = 3.0 + 20*0.5 + 4.5 = 17.5
        // bl(t0) = 1.5 + 10*0.5 + 17.5 = 24.0
        assert_eq!(bl, vec![24.0, 17.5, 4.5]);
    }

    #[test]
    fn bottom_levels_take_max_branch() {
        let mut b = DagBuilder::new();
        let root = b.add_task(2.0);
        let cheap = b.add_task(2.0);
        let dear = b.add_task(20.0);
        b.add_edge(root, cheap, 0.0);
        b.add_edge(root, dear, 0.0);
        let dag = b.build().unwrap();
        let plat = Platform::uniform_delay(2, 1.0);
        let exec = ExecutionMatrix::consistent(&dag, &[1.0, 1.0]);
        let inst = Instance::new(dag, plat, exec);
        let avg = AverageCosts::new(&inst);
        let bl = bottom_levels(&inst, &avg);
        assert_eq!(bl[0], 2.0 + 0.0 + 20.0);
    }

    #[test]
    fn single_task_bottom_level_is_its_mean() {
        let mut b = DagBuilder::new();
        b.add_task(8.0);
        let dag = b.build().unwrap();
        let plat = Platform::uniform_delay(4, 1.0);
        let exec = ExecutionMatrix::consistent(&dag, &[1.0, 2.0, 4.0, 8.0]);
        let inst = Instance::new(dag, plat, exec);
        let avg = AverageCosts::new(&inst);
        let bl = bottom_levels(&inst, &avg);
        // (8 + 4 + 2 + 1)/4 = 3.75
        assert_eq!(bl, vec![3.75]);
    }
}
