//! Latency bounds: `M*` (equation 2), `M` (equation 4), and absolute
//! lower bounds used as sanity anchors by the test suite.
//!
//! * `M*` — the schedule's makespan when **no** processor fails: every
//!   task starts on the first arriving copy of each input, so the
//!   relevant finish per task is its *earliest* replica.
//! * `M` — the guaranteed makespan under up to `ε` failures
//!   (Proposition 4.2: the achieved latency `L ≤ M`): every input is
//!   delivered by the *latest* replica.
//! * [`critical_path_bound`] — no valid schedule (any algorithm, any
//!   `ε`) can beat the DAG's critical path executed at per-task fastest
//!   speeds with free communication.

use crate::schedule::Schedule;
use platform::Instance;
use taskgraph::Dag;

/// `M*` of equation (2) — delegates to the schedule (kept here so the
/// formula's home is the bounds module).
pub fn lower_bound(sched: &Schedule, dag: &Dag) -> f64 {
    sched.latency_lower_bound_for(dag)
}

/// `M` of equation (4).
pub fn upper_bound(sched: &Schedule, dag: &Dag) -> f64 {
    sched.latency_upper_bound_for(dag)
}

/// Absolute latency lower bound: the critical path with every task at its
/// fastest processor and zero communication. Any schedule's `M*` is at
/// least this.
pub fn critical_path_bound(inst: &Instance) -> f64 {
    let dag = &inst.dag;
    let mut dist = vec![0.0f64; dag.num_tasks()];
    let mut best = 0.0f64;
    for &t in dag.topological_order() {
        let arr = dag
            .preds(t)
            .iter()
            .map(|&(p, _)| dist[p.index()])
            .fold(0.0f64, f64::max);
        dist[t.index()] = arr + inst.exec.fastest(t.index());
        best = best.max(dist[t.index()]);
    }
    best
}

/// Worst-case message counts of Section 4.2: `e(ε+1)²` for plain
/// replication, `e(ε+1)` for MC-FTSA.
pub fn max_messages(edges: usize, epsilon: usize) -> (usize, usize) {
    let r = epsilon + 1;
    (edges * r * r, edges * r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftsa::ftsa;
    use crate::mc_ftsa::{mc_ftsa, Selector};
    use platform::gen::{paper_instance, PaperInstanceConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn critical_path_bound_holds_for_all_algorithms() {
        for seed in 0..5u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
            let cp = critical_path_bound(&inst);
            for eps in [0usize, 1, 2] {
                let mut tb = StdRng::seed_from_u64(seed);
                let f = ftsa(&inst, eps, &mut tb).unwrap();
                assert!(f.latency_lower_bound() >= cp - 1e-6);
                let mc = mc_ftsa(&inst, eps, Selector::Greedy, &mut tb).unwrap();
                assert!(mc.latency_lower_bound() >= cp - 1e-6);
            }
        }
    }

    #[test]
    fn exit_bound_equals_global_bound() {
        let mut r = StdRng::seed_from_u64(9);
        let inst = paper_instance(&mut r, &PaperInstanceConfig::default());
        let s = ftsa(&inst, 1, &mut StdRng::seed_from_u64(9)).unwrap();
        assert!((lower_bound(&s, &inst.dag) - s.latency_lower_bound()).abs() < 1e-9);
        assert!((upper_bound(&s, &inst.dag) - s.latency_upper_bound()).abs() < 1e-9);
    }

    #[test]
    fn message_bound_formulas() {
        assert_eq!(max_messages(10, 0), (10, 10));
        assert_eq!(max_messages(10, 2), (90, 30));
    }
}
