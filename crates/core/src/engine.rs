//! Shared placement engine: dual-timeline bookkeeping used by FTSA,
//! MC-FTSA and FTBAR.
//!
//! The engine owns the growing [`Schedule`] plus per-processor ready
//! times `r(P_j)` on both timelines, and implements the arrival terms of
//! equations (1) and (3):
//!
//! * optimistic arrival (eq. 1): `max_{t* ∈ Γ⁻(t)} min_k { F(t*ᵏ) + W(t*ᵏ, t) }`
//! * pessimistic arrival (eq. 3): `max_{t* ∈ Γ⁻(t)} max_k { F(t*ᵏ) + W(t*ᵏ, t) }`
//!
//! where `W(t*ᵏ, t) = V(t*, t) · d(P(t*ᵏ), P_j)` vanishes when the sender
//! replica lives on the candidate processor itself (the intra-processor
//! shortcut noted below Theorem 4.1).

use crate::schedule::{Replica, Schedule};
use platform::{Instance, ProcId};
use taskgraph::TaskId;

/// Dual-timeline placement state.
#[derive(Debug, Clone)]
pub(crate) struct Engine<'a> {
    pub inst: &'a Instance,
    pub sched: Schedule,
    /// `r(P_j)` on the optimistic timeline.
    pub ready_lb: Vec<f64>,
    /// `r(P_j)` on the pessimistic timeline.
    pub ready_ub: Vec<f64>,
}

impl<'a> Engine<'a> {
    pub fn new(inst: &'a Instance, epsilon: usize) -> Self {
        let m = inst.num_procs();
        Engine {
            inst,
            sched: Schedule::empty(inst.num_tasks(), m, epsilon),
            ready_lb: vec![0.0; m],
            ready_ub: vec![0.0; m],
        }
    }

    /// Optimistic arrival term of eq. (1) for task `t` on processor `j`:
    /// each predecessor delivers from its earliest-available replica.
    pub fn arrival_lb(&self, t: TaskId, j: usize) -> f64 {
        let dag = &self.inst.dag;
        let plat = &self.inst.platform;
        let mut arrival = 0.0f64;
        for &(p, eid) in dag.preds(t) {
            let vol = dag.volume(eid);
            let best = self
                .sched
                .replicas_of(p)
                .iter()
                .map(|r| r.finish_lb + vol * plat.delay(r.proc.index(), j))
                .fold(f64::INFINITY, f64::min);
            arrival = arrival.max(best);
        }
        arrival
    }

    /// Pessimistic arrival term of eq. (3): each predecessor delivers
    /// from its latest replica (worst case under failures).
    pub fn arrival_ub(&self, t: TaskId, j: usize) -> f64 {
        let dag = &self.inst.dag;
        let plat = &self.inst.platform;
        let mut arrival = 0.0f64;
        for &(p, eid) in dag.preds(t) {
            let vol = dag.volume(eid);
            let worst = self
                .sched
                .replicas_of(p)
                .iter()
                .map(|r| r.finish_ub + vol * plat.delay(r.proc.index(), j))
                .fold(f64::NEG_INFINITY, f64::max);
            arrival = arrival.max(worst);
        }
        arrival
    }

    /// Candidate finish time `F(t, P_j)` of eq. (1).
    pub fn finish_candidate_lb(&self, t: TaskId, j: usize) -> f64 {
        self.inst.exec.time(t.index(), j) + self.arrival_lb(t, j).max(self.ready_lb[j])
    }

    /// Places a replica of `t` on processor `j` with arrivals computed
    /// from the current schedule state; returns the replica index.
    pub fn place(&mut self, t: TaskId, j: usize) -> usize {
        let e = self.inst.exec.time(t.index(), j);
        let start_lb = self.arrival_lb(t, j).max(self.ready_lb[j]);
        let start_ub = self.arrival_ub(t, j).max(self.ready_ub[j]);
        self.place_with_times(t, j, start_lb, start_lb + e, start_ub, start_ub + e)
    }

    /// Places a replica with explicit times (MC-FTSA computes them from
    /// its matched senders). Updates ready times and placement order.
    pub fn place_with_times(
        &mut self,
        t: TaskId,
        j: usize,
        start_lb: f64,
        finish_lb: f64,
        start_ub: f64,
        finish_ub: f64,
    ) -> usize {
        debug_assert!(start_lb >= self.ready_lb[j] - 1e-9);
        debug_assert!(finish_lb >= start_lb && finish_ub >= start_ub);
        let rep = Replica {
            proc: ProcId(j as u32),
            start_lb,
            finish_lb,
            start_ub,
            finish_ub,
        };
        let idx = self.sched.replicas[t.index()].len();
        self.sched.replicas[t.index()].push(rep);
        self.sched.proc_order[j].push((t, idx));
        self.ready_lb[j] = finish_lb;
        self.ready_ub[j] = finish_ub;
        idx
    }

    /// Selects the `count` processors realizing the smallest candidate
    /// finish times of eq. (1) (ties broken toward the lower index, which
    /// keeps runs deterministic). Returns `(proc, finish)` pairs sorted by
    /// finish.
    pub fn best_procs(&self, t: TaskId, count: usize) -> Vec<(usize, f64)> {
        let m = self.inst.num_procs();
        debug_assert!(count <= m);
        let mut cand: Vec<(usize, f64)> = (0..m)
            .map(|j| (j, self.finish_candidate_lb(t, j)))
            .collect();
        cand.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        cand.truncate(count);
        cand
    }

    /// Current schedule length on the optimistic timeline (FTBAR's
    /// `R(n−1)`).
    pub fn current_length_lb(&self) -> f64 {
        self.ready_lb.iter().copied().fold(0.0, f64::max)
    }
}
