//! Shared placement engine: dual-timeline bookkeeping with incremental
//! arrival caches, used by every configuration of the list-scheduling
//! pipeline.
//!
//! The engine *borrows* its state — the growing [`Schedule`] plus the
//! per-processor ready times `r(P_j)` and the flat per-(edge, processor)
//! arrival cache — from a [`crate::workspace::ScheduleWorkspace`], so
//! repeated runs reuse every buffer and the steady state allocates
//! nothing. It implements the arrival terms of equations (1) and (3):
//!
//! * optimistic arrival (eq. 1): `max_{t* ∈ Γ⁻(t)} min_k { F(t*ᵏ) + W(t*ᵏ, t) }`
//! * pessimistic arrival (eq. 3): `max_{t* ∈ Γ⁻(t)} max_k { F(t*ᵏ) + W(t*ᵏ, t) }`
//!
//! where `W(t*ᵏ, t) = V(t*, t) · d(P(t*ᵏ), P_j)` vanishes when the sender
//! replica lives on the candidate processor itself (the intra-processor
//! shortcut noted below Theorem 4.1).
//!
//! # Incremental arrival caches
//!
//! The seed implementation recomputed the eq. (1) inner fold from
//! scratch for every `(task, processor)` query: `O(preds · reps · m)`
//! per selection. The engine instead maintains, per DAG edge
//! `e = (t* → t)` and processor `P_j`, the partially-folded optimistic
//! term:
//!
//! * `arrive_lb[e][j] = min_k { F_lb(t*ᵏ) + V(e) · d(P(t*ᵏ), P_j) }`
//!
//! folded over the replicas `t*ᵏ` placed *so far* (`+∞` while the source
//! is unplaced). Placing one replica streams its contribution into each
//! outgoing edge row in `O(succs · m)`; an eq. (1) arrival query then
//! only folds the `O(preds)` cached edge terms. The cache stays exact
//! under FTBAR's late parent duplication because adding a replica moves
//! each cached `min` monotonically down — the per-edge granularity is
//! precisely what makes the fold updatable (a per-task `max`-of-`min`s
//! cache could not absorb a decreasing inner `min`).
//!
//! # Arena layout (pred-major CSR)
//!
//! The edge cache is one flat `e · m` arena of doubles indexed by
//! *predecessor slot*, not by edge id: row `k` of the arena is the
//! cache row of `preds(t)[k - pred_base(t)]` for the task `t` owning
//! slot `k`, mirroring the CSR adjacency of [`taskgraph::Dag`]. A
//! task's incoming rows are therefore one contiguous block of
//! `in_degree(t) · m` doubles, so the hottest read —
//! [`Engine::arrival_row_lb_slice`], one full arrival row per pressure
//! (re-)evaluation — streams a single block sequentially instead of
//! gathering `preds` rows scattered across the arena. Writes (one
//! `min`-SAXPY per outgoing edge on placement) stay `O(succs · m)`
//! through the same slot indirection. Fold order per row is the CSR
//! slot order, i.e. exactly the `preds` order the seed folds in, so the
//! packing is invisible to the float results.
//!
//! The pessimistic eq. (3) fold is *not* cached: it is queried exactly
//! once per placed replica (never during selection sweeps), so the seed
//! recomputation is already optimal there and a second `e × m` cache
//! would only add memory traffic.
//!
//! Both folds select (never combine) IEEE values and every summand is
//! computed by the same `F + V·d` expression as the seed, so cached
//! arrivals are bit-identical to the from-scratch recomputation — the
//! golden suite pins this.

use crate::schedule::{Replica, Schedule};
use ftcollections::fold::{max_in_place, min_saxpy_in_place};
use ftcollections::select_smallest_into;
use platform::{Instance, ProcId};
use taskgraph::{EdgeId, TaskId};

/// Dual-timeline placement state, borrowing its buffers from a
/// [`crate::workspace::ScheduleWorkspace`].
#[derive(Debug)]
pub(crate) struct Engine<'a> {
    pub inst: &'a Instance,
    pub sched: &'a mut Schedule,
    /// `r(P_j)` on the optimistic timeline.
    pub ready_lb: &'a mut [f64],
    /// `r(P_j)` on the pessimistic timeline.
    pub ready_ub: &'a mut [f64],
    /// `arrive_lb[pred_slot(eid) · m + j]`: cached optimistic per-edge
    /// arrival, **pred-major**: a task's incoming rows are contiguous
    /// (see the module docs on the arena layout).
    arrive_lb: &'a mut [f64],
    /// Processor count (row stride of the edge cache).
    m: usize,
}

impl<'a> Engine<'a> {
    /// Wraps freshly reset workspace buffers. `ready_lb`/`ready_ub` must
    /// be zeroed at length `m`; `arrive_lb` must be `+∞`-filled at
    /// length `e · m`; `sched` must be an empty skeleton.
    pub fn new(
        inst: &'a Instance,
        sched: &'a mut Schedule,
        ready_lb: &'a mut [f64],
        ready_ub: &'a mut [f64],
        arrive_lb: &'a mut [f64],
    ) -> Self {
        let m = inst.num_procs();
        debug_assert_eq!(ready_lb.len(), m);
        debug_assert_eq!(arrive_lb.len(), inst.dag.num_edges() * m);
        Engine {
            inst,
            sched,
            ready_lb,
            ready_ub,
            arrive_lb,
            m,
        }
    }

    /// Optimistic arrival term of eq. (1) for task `t` on processor `j`:
    /// each predecessor delivers from its earliest-available replica.
    /// With the pred-major arena, `t`'s incoming rows are a single
    /// contiguous block — the fold walks it at stride `m`, same slot
    /// order as [`taskgraph::Dag::preds`] (so same fold order as ever).
    pub fn arrival_lb(&self, t: TaskId, j: usize) -> f64 {
        let mut arrival = 0.0f64;
        for slot in self.inst.dag.pred_range(t) {
            arrival = arrival.max(self.arrive_lb[slot * self.m + j]);
        }
        arrival
    }

    /// Fills `row[j] = arrival_lb(t, j)` for every processor at once,
    /// streaming each incoming edge's contiguous cache row instead of
    /// striding across rows per processor — the cache-friendly form the
    /// selection sweeps use. Each edge row is folded in with the 8-lane
    /// chunked max of [`ftcollections::fold`] (same operands, same
    /// per-processor order, deterministic ties), so the values are
    /// bit-identical to [`Engine::arrival_lb`].
    pub fn arrival_row_lb(&self, t: TaskId, row: &mut Vec<f64>) {
        row.clear();
        row.resize(self.m, 0.0);
        self.arrival_row_lb_slice(t, row);
    }

    /// [`Engine::arrival_row_lb`] into a caller-owned slice of length
    /// `m` — the form the incremental pressure cache uses to fold
    /// straight into its per-task row arena.
    pub fn arrival_row_lb_slice(&self, t: TaskId, row: &mut [f64]) {
        debug_assert_eq!(row.len(), self.m);
        row.fill(0.0);
        // Pred-major arena: the whole query streams one contiguous
        // block of `in_degree(t) · m` doubles, row by row.
        for slot in self.inst.dag.pred_range(t) {
            let base = slot * self.m;
            max_in_place(row, &self.arrive_lb[base..base + self.m]);
        }
    }

    /// Pessimistic arrival term of eq. (3): each predecessor delivers
    /// from its latest replica (worst case under failures). Computed
    /// from the replicas directly — this fold is queried once per
    /// placement, never in a selection sweep, so caching it would cost
    /// more than it saves.
    pub fn arrival_ub(&self, t: TaskId, j: usize) -> f64 {
        let dag = &self.inst.dag;
        let plat = &self.inst.platform;
        let mut arrival = 0.0f64;
        for &(p, eid) in dag.preds(t) {
            let vol = dag.volume(eid);
            let worst = self
                .sched
                .replicas_of(p)
                .iter()
                .map(|r| r.finish_ub + vol * plat.delay(r.proc.index(), j))
                .fold(f64::NEG_INFINITY, f64::max);
            arrival = arrival.max(worst);
        }
        arrival
    }

    /// Cached optimistic arrival of one edge on processor `j`: the
    /// earliest time the edge's data can reach `P_j` from the source
    /// replicas placed so far (`+∞` while the source is unplaced).
    pub fn edge_arrival_lb(&self, eid: EdgeId, j: usize) -> f64 {
        self.arrive_lb[self.inst.dag.pred_slot(eid) * self.m + j]
    }

    /// Candidate finish time `F(t, P_j)` of eq. (1).
    pub fn finish_candidate_lb(&self, t: TaskId, j: usize) -> f64 {
        self.inst.exec.time(t.index(), j) + self.arrival_lb(t, j).max(self.ready_lb[j])
    }

    /// Places a replica of `t` on processor `j` with arrivals computed
    /// from the current schedule state; returns the replica index. The
    /// outgoing-edge arrival folds run immediately — the form the
    /// duplication pass needs, whose new replica's rows are read within
    /// the same step.
    pub fn place(&mut self, t: TaskId, j: usize) -> usize {
        let idx = self.place_deferred(t, j);
        self.fold_replica_out_edges(t, self.sched.replicas_of(t)[idx].finish_lb, j);
        idx
    }

    /// [`Engine::place`] *without* the outgoing-edge folds: the caller
    /// batches them per task via [`Engine::flush_out_edges`] after all
    /// of the task's replicas landed. Legal whenever nothing reads the
    /// task's outgoing rows before the flush — true for the main
    /// placement loop, where a task's successors cannot become free (let
    /// alone be queried) until the step completes.
    pub fn place_deferred(&mut self, t: TaskId, j: usize) -> usize {
        let e = self.inst.exec.time(t.index(), j);
        let start_lb = self.arrival_lb(t, j).max(self.ready_lb[j]);
        let start_ub = self.arrival_ub(t, j).max(self.ready_ub[j]);
        self.place_with_times_deferred(t, j, start_lb, start_lb + e, start_ub, start_ub + e)
    }

    /// Places a replica with explicit times (matched-communication
    /// placement computes them from its selected senders). Updates ready
    /// times and placement order; outgoing-edge folds are deferred to
    /// [`Engine::flush_out_edges`].
    pub fn place_with_times_deferred(
        &mut self,
        t: TaskId,
        j: usize,
        start_lb: f64,
        finish_lb: f64,
        start_ub: f64,
        finish_ub: f64,
    ) -> usize {
        debug_assert!(start_lb >= self.ready_lb[j] - 1e-9);
        debug_assert!(finish_lb >= start_lb && finish_ub >= start_ub);
        let rep = Replica {
            proc: ProcId(j as u32),
            start_lb,
            finish_lb,
            start_ub,
            finish_ub,
        };
        let idx = self.sched.push_replica(t, j, rep);
        self.ready_lb[j] = finish_lb;
        self.ready_ub[j] = finish_ub;
        idx
    }

    /// Folds one new replica of `t` into every outgoing edge's arrival
    /// cache: `O(succs · m)` — the flip side of O(preds) arrival
    /// queries. The sender's delay row and the edge row are streamed
    /// through the elementwise min-saxpy fold, which auto-vectorizes and
    /// keeps the per-cell expression `min(cell, finish + vol·d)` exact.
    fn fold_replica_out_edges(&mut self, t: TaskId, finish_lb: f64, j: usize) {
        let dag = &self.inst.dag;
        let drow = self.inst.platform.delay_row(j);
        for &(_, eid) in dag.succs(t) {
            let vol = dag.volume(eid);
            let base = dag.pred_slot(eid) * self.m;
            min_saxpy_in_place(
                &mut self.arrive_lb[base..base + self.m],
                finish_lb,
                vol,
                drow,
            );
        }
    }

    /// Runs the outgoing-edge arrival folds for **all** replicas of `t`
    /// at once, edge-major: each edge row is loaded once and all `ε + 1`
    /// replica folds run over it back to back while it sits in L1 —
    /// the cache-blocked loop interchange of the per-replica
    /// [`Engine::place`] fold (the "tile" is the `m`-wide edge row). The
    /// per-cell fold order is replica placement order, exactly the order
    /// the immediate folds apply, so cached arrivals stay bit-identical.
    pub fn flush_out_edges(&mut self, t: TaskId) {
        let dag = &self.inst.dag;
        let reps = self.sched.replicas_of(t);
        for &(_, eid) in dag.succs(t) {
            let vol = dag.volume(eid);
            let base = dag.pred_slot(eid) * self.m;
            let row = &mut self.arrive_lb[base..base + self.m];
            for rep in reps {
                let drow = self.inst.platform.delay_row(rep.proc.index());
                min_saxpy_in_place(row, rep.finish_lb, vol, drow);
            }
        }
    }

    /// Selects the `count` processors realizing the smallest candidate
    /// finish times of eq. (1) (ties broken toward the lower index, which
    /// keeps runs deterministic) into the caller's buffer. `out` ends up
    /// holding `(proc, finish)` pairs sorted by finish — a partial
    /// selection, not a full `m log m` sort, and no allocation. `row` is
    /// arrival scratch (see [`Engine::arrival_row_lb`]).
    pub fn best_procs_into(
        &self,
        t: TaskId,
        count: usize,
        row: &mut Vec<f64>,
        out: &mut Vec<(usize, f64)>,
    ) {
        debug_assert!(count <= self.m);
        self.arrival_row_lb(t, row);
        let exec = self.inst.exec.times_row(t.index());
        select_smallest_into(
            self.m,
            count,
            |j| exec[j] + row[j].max(self.ready_lb[j]),
            out,
        );
    }

    /// Current schedule length on the optimistic timeline (FTBAR's
    /// `R(n−1)`).
    pub fn current_length_lb(&self) -> f64 {
        self.ready_lb.iter().copied().fold(0.0, f64::max)
    }
}
