//! Incremental-vs-reference schedule-pressure equivalence.
//!
//! The production pressure sweep caches arrival rows and σ-selections
//! and prunes provably-losing tasks (see the pipeline module docs); the
//! pre-incremental exhaustive sweep survives as
//! `ListScheduler::run_into_reference_pressure`. The two must agree
//! **bitwise** — same task sequence, same σ processor sets, same replica
//! time bits, same matched-communication pairs — on every DAG family,
//! every ε and every seed, for every pressure-driven configuration
//! (FTBAR, P-FTSA, MC-FTBAR). These tests are the oracle that pins that
//! claim beyond the fixed golden instances.
//!
//! The proptest oracle additionally runs the *checked* heap path
//! (`run_into_xcheck_pressure`), which debug-asserts the heap winner
//! against an exhaustive argmax recomputation at **every** selection
//! step — so a divergence is caught at the step it happens, not just in
//! the final schedule. Deterministic adversaries target the heap
//! machinery specifically: exact-tie urgencies (token-only ordering
//! through the tie-group pop), warm-workspace tombstone reuse across
//! wildly different instance sizes, and a v=5000 layered instance deep
//! in the regime the heap families were built for.

use ftsched_core::{schedule_into, Algorithm, ScheduleWorkspace};
use platform::gen::random_platform;
use platform::{ExecutionMatrix, Instance};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use taskgraph::generators::{
    erdos, fork_join, layered, series_parallel, ErdosConfig, ForkJoinConfig, LayeredConfig,
    SeriesParallelConfig,
};
use taskgraph::workloads::{cholesky, fft, gaussian_elimination, wavefront};
use taskgraph::Dag;

#[derive(Debug, Clone, Copy)]
enum Family {
    Layered,
    Erdos,
    ForkJoin,
    SeriesParallel,
    Gauss,
    Fft,
    Cholesky,
    Wavefront,
}

fn build(family: Family, seed: u64, size: usize) -> Dag {
    let mut rng = StdRng::seed_from_u64(seed);
    match family {
        Family::Layered => layered(&mut rng, &LayeredConfig::paper(size.max(1))),
        Family::Erdos => erdos(&mut rng, &ErdosConfig::sparse(size.max(1))),
        Family::ForkJoin => fork_join(&mut rng, &ForkJoinConfig::new(size % 4 + 1, size % 6 + 1)),
        Family::SeriesParallel => {
            series_parallel(&mut rng, &SeriesParallelConfig::new(size.max(2)))
        }
        Family::Gauss => gaussian_elimination(size % 8 + 2, 5.0, 2.0),
        Family::Fft => fft(1 << (size % 4 + 1), 8.0, 12.0),
        Family::Cholesky => cholesky(size % 6 + 2, 6.0, 9.0),
        Family::Wavefront => wavefront(size % 5 + 2, size % 4 + 2, 8.0, 10.0),
    }
}

fn family_strategy() -> impl Strategy<Value = Family> {
    prop_oneof![
        Just(Family::Layered),
        Just(Family::Erdos),
        Just(Family::ForkJoin),
        Just(Family::SeriesParallel),
        Just(Family::Gauss),
        Just(Family::Fft),
        Just(Family::Cholesky),
        Just(Family::Wavefront),
    ]
}

/// The pressure-driven configurations: every pipeline point where
/// `PriorityAxis::Pressure` (and therefore the incremental cache) is in
/// play.
const PRESSURE_ALGS: [Algorithm; 3] = [
    Algorithm::Ftbar,
    Algorithm::FtsaPressure,
    Algorithm::FtbarMatched,
];

/// Bitwise schedule comparison: task sequence, per-task replica
/// processors and all four timeline values (as bits), plus the matched
/// communication pairs when present.
fn assert_bit_identical(
    inst: &Instance,
    alg: Algorithm,
    eps: usize,
    inc: &ftsched_core::Schedule,
    reference: &ftsched_core::Schedule,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        &inc.schedule_order,
        &reference.schedule_order,
        "{:?}/eps{}: task sequence diverged",
        alg,
        eps
    );
    for t in inst.dag.tasks() {
        let a = inc.replicas_of(t);
        let b = reference.replicas_of(t);
        prop_assert_eq!(
            a.len(),
            b.len(),
            "{:?}/eps{}: replica count of {:?}",
            alg,
            eps,
            t
        );
        for (ra, rb) in a.iter().zip(b) {
            prop_assert_eq!(ra.proc, rb.proc, "{:?}/eps{}: σ-set of {:?}", alg, eps, t);
            for (x, y) in [
                (ra.start_lb, rb.start_lb),
                (ra.finish_lb, rb.finish_lb),
                (ra.start_ub, rb.start_ub),
                (ra.finish_ub, rb.finish_ub),
            ] {
                prop_assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{:?}/eps{}: replica time bits of {:?}",
                    alg,
                    eps,
                    t
                );
            }
        }
    }
    match (&inc.comm, &reference.comm) {
        (ftsched_core::CommSelection::AllToAll, ftsched_core::CommSelection::AllToAll) => {}
        (ftsched_core::CommSelection::Matched(a), ftsched_core::CommSelection::Matched(b)) => {
            prop_assert_eq!(a, b, "{:?}/eps{}: matched pairs diverged", alg, eps);
        }
        _ => return Err(TestCaseError::fail(format!("{alg:?}/eps{eps}: comm kind"))),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The oracle: on random instances, the incremental sweep and the
    /// exhaustive reference produce the same (task, σ-set) sequence —
    /// and therefore bit-identical schedules — for every pressure
    /// algorithm and every ε.
    #[test]
    fn incremental_pressure_matches_reference(
        family in family_strategy(),
        seed in 0u64..5_000,
        size in 4usize..40,
        procs in 3usize..9,
        eps_raw in 0usize..3,
    ) {
        let eps = eps_raw.min(procs - 1);
        let dag = build(family, seed, size);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51C);
        let platform = random_platform(&mut rng, procs, 0.5, 1.0);
        let exec = ExecutionMatrix::unrelated_with_procs(&dag, procs, &mut rng, 0.5);
        let inst = Instance::new(dag, platform, exec);
        let mut ws = ScheduleWorkspace::new();
        for alg in PRESSURE_ALGS {
            let inc = {
                let mut tie = StdRng::seed_from_u64(seed);
                schedule_into(&inst, eps, alg, &mut tie, &mut ws)
                    .unwrap()
                    .clone()
            };
            let reference = {
                let mut tie = StdRng::seed_from_u64(seed);
                alg.scheduler()
                    .run_into_reference_pressure(&inst, eps, &mut tie, &mut ws)
                    .unwrap()
                    .clone()
            };
            assert_bit_identical(&inst, alg, eps, &inc, &reference)?;
            // Checked heap path: per-step exhaustive argmax debug-assert
            // inside, bit-identical schedule outside.
            let checked = {
                let mut tie = StdRng::seed_from_u64(seed);
                alg.scheduler()
                    .run_into_xcheck_pressure(&inst, eps, &mut tie, &mut ws)
                    .unwrap()
                    .clone()
            };
            assert_bit_identical(&inst, alg, eps, &checked, &reference)?;
        }
    }

    /// Workspace reuse across shapes must not leak cache state between
    /// runs: interleaving different instances, ε values and algorithms
    /// through one workspace stays bit-identical to the reference.
    #[test]
    fn warm_workspace_reuse_stays_identical(
        seed in 0u64..3_000,
        size_a in 4usize..30,
        size_b in 4usize..30,
    ) {
        let dag_a = build(Family::Layered, seed, size_a);
        let dag_b = build(Family::Erdos, seed ^ 1, size_b);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCA11);
        let procs = 5;
        let mk = |dag: Dag, rng: &mut StdRng| {
            let platform = random_platform(rng, procs, 0.5, 1.0);
            let exec = ExecutionMatrix::unrelated_with_procs(&dag, procs, rng, 0.5);
            Instance::new(dag, platform, exec)
        };
        let inst_a = mk(dag_a, &mut rng);
        let inst_b = mk(dag_b, &mut rng);
        let mut ws = ScheduleWorkspace::new();
        // Interleave shapes and ε through the same warm workspace.
        for (inst, eps) in [(&inst_a, 1), (&inst_b, 2), (&inst_a, 0), (&inst_b, 1)] {
            let inc = {
                let mut tie = StdRng::seed_from_u64(seed);
                schedule_into(inst, eps, Algorithm::Ftbar, &mut tie, &mut ws)
                    .unwrap()
                    .clone()
            };
            let reference = {
                let mut tie = StdRng::seed_from_u64(seed);
                Algorithm::Ftbar
                    .scheduler()
                    .run_into_reference_pressure(inst, eps, &mut tie, &mut ws)
                    .unwrap()
                    .clone()
            };
            assert_bit_identical(inst, Algorithm::Ftbar, eps, &inc, &reference)?;
        }
    }
}

/// Exact-tie adversary: a symmetric wavefront with *constant* task
/// costs, edge volumes and delays on a uniform platform. Whole layers
/// of free tasks share bit-identical urgencies, so selection order is
/// decided purely by the random tokens — the heap path must surface the
/// full tie group (distinct raw keys can also collapse to equal
/// urgencies after the `− R(n−1)` subtraction) and pick the same
/// max-token task the reference sweep finds.
#[test]
fn exact_tie_urgencies_break_by_token() {
    let dag = wavefront(9, 9, 3.0, 1.0);
    let procs = 8;
    let v = dag.num_tasks();
    let platform = platform::Platform::uniform_delay(procs, 0.25);
    let exec = ExecutionMatrix::from_fn(v, procs, |_, _| 3.0);
    let inst = Instance::new(dag, platform, exec);
    let mut ws = ScheduleWorkspace::new();
    for alg in PRESSURE_ALGS {
        for eps in [0usize, 1, 2, 3] {
            for seed in [1u64, 77, 0xDEAD] {
                let inc = {
                    let mut tie = StdRng::seed_from_u64(seed);
                    schedule_into(&inst, eps, alg, &mut tie, &mut ws)
                        .unwrap()
                        .clone()
                };
                let reference = {
                    let mut tie = StdRng::seed_from_u64(seed);
                    alg.scheduler()
                        .run_into_reference_pressure(&inst, eps, &mut tie, &mut ws)
                        .unwrap()
                        .clone()
                };
                assert_eq!(
                    inc.schedule_order, reference.schedule_order,
                    "{alg:?}/eps{eps}/seed{seed}: tie-broken sequence diverged"
                );
                for t in inst.dag.tasks() {
                    for (ra, rb) in inc.replicas_of(t).iter().zip(reference.replicas_of(t)) {
                        assert_eq!(ra.proc, rb.proc, "{alg:?}/eps{eps}/seed{seed}: σ of {t:?}");
                        assert_eq!(ra.finish_lb.to_bits(), rb.finish_lb.to_bits());
                    }
                }
            }
        }
    }
}

/// Tombstone-reuse adversary: one warm workspace carries heap arenas,
/// epochs and guard queues from a 1500-task layered run into tiny
/// instances and back, twice. Any entry surviving `reset` (a stale
/// tombstone misread as live, a guard from the previous shape) would
/// surface as a selection divergence.
#[test]
fn warm_tombstone_reuse_across_sizes() {
    let mut rng = StdRng::seed_from_u64(0x70B5);
    let big = {
        let dag = layered(&mut rng, &LayeredConfig::paper(1500));
        let platform = random_platform(&mut rng, 10, 0.5, 1.0);
        let exec = ExecutionMatrix::unrelated_with_procs(&dag, 10, &mut rng, 0.5);
        Instance::new(dag, platform, exec)
    };
    let tiny = {
        let dag = wavefront(3, 3, 4.0, 2.0);
        let platform = random_platform(&mut rng, 10, 0.5, 1.0);
        let exec = ExecutionMatrix::unrelated_with_procs(&dag, 10, &mut rng, 0.5);
        Instance::new(dag, platform, exec)
    };
    let mut ws = ScheduleWorkspace::new();
    for alg in [Algorithm::Ftbar, Algorithm::FtbarMatched] {
        for inst in [&big, &tiny, &big, &tiny] {
            let inc = {
                let mut tie = StdRng::seed_from_u64(0xEC0);
                schedule_into(inst, 1, alg, &mut tie, &mut ws)
                    .unwrap()
                    .clone()
            };
            let reference = {
                let mut tie = StdRng::seed_from_u64(0xEC0);
                alg.scheduler()
                    .run_into_reference_pressure(inst, 1, &mut tie, &mut ws)
                    .unwrap()
                    .clone()
            };
            assert_eq!(
                inc.schedule_order,
                reference.schedule_order,
                "{alg:?}: warm-reuse sequence diverged at v={}",
                inst.dag.num_tasks()
            );
            for t in inst.dag.tasks() {
                for (ra, rb) in inc.replicas_of(t).iter().zip(reference.replicas_of(t)) {
                    assert_eq!(ra.proc, rb.proc, "{alg:?}: warm-reuse σ of {t:?}");
                    assert_eq!(ra.finish_lb.to_bits(), rb.finish_lb.to_bits());
                    assert_eq!(ra.finish_ub.to_bits(), rb.finish_ub.to_bits());
                }
            }
        }
    }
}

/// The heap families were built for the large-v regime; pin bit-identity
/// once deep inside it (v = 5000 layered, the bench family) rather than
/// only on proptest-sized instances.
#[test]
fn large_layered_oracle_v5000() {
    let mut rng = StdRng::seed_from_u64(0x5_000);
    let dag = layered(&mut rng, &LayeredConfig::paper(5000));
    let platform = random_platform(&mut rng, 16, 0.5, 1.0);
    let exec = ExecutionMatrix::unrelated_with_procs(&dag, 16, &mut rng, 0.5);
    let inst = Instance::new(dag, platform, exec);
    let mut ws = ScheduleWorkspace::new();
    let inc = {
        let mut tie = StdRng::seed_from_u64(42);
        schedule_into(&inst, 1, Algorithm::Ftbar, &mut tie, &mut ws)
            .unwrap()
            .clone()
    };
    let reference = {
        let mut tie = StdRng::seed_from_u64(42);
        Algorithm::Ftbar
            .scheduler()
            .run_into_reference_pressure(&inst, 1, &mut tie, &mut ws)
            .unwrap()
            .clone()
    };
    assert_eq!(
        inc.schedule_order, reference.schedule_order,
        "v=5000 layered: task sequence diverged"
    );
    for t in inst.dag.tasks() {
        for (ra, rb) in inc.replicas_of(t).iter().zip(reference.replicas_of(t)) {
            assert_eq!(ra.proc, rb.proc, "v=5000 layered: σ of {t:?}");
            assert_eq!(ra.finish_lb.to_bits(), rb.finish_lb.to_bits());
            assert_eq!(ra.finish_ub.to_bits(), rb.finish_ub.to_bits());
        }
    }
}

/// A deterministic smoke check (no proptest machinery) so a plain
/// `cargo test pressure_incremental` exercises the oracle too: a layered
/// paper instance large enough for duplication, pruning and multi-layer
/// staleness to all occur.
#[test]
fn deterministic_layered_oracle() {
    let mut rng = StdRng::seed_from_u64(0xF1B);
    let dag = layered(&mut rng, &LayeredConfig::paper(300));
    let platform = random_platform(&mut rng, 12, 0.5, 1.0);
    let exec = ExecutionMatrix::unrelated_with_procs(&dag, 12, &mut rng, 0.5);
    let inst = Instance::new(dag, platform, exec);
    let mut ws = ScheduleWorkspace::new();
    for alg in PRESSURE_ALGS {
        for eps in [0usize, 1, 2] {
            let inc = {
                let mut tie = StdRng::seed_from_u64(9);
                schedule_into(&inst, eps, alg, &mut tie, &mut ws)
                    .unwrap()
                    .clone()
            };
            let reference = {
                let mut tie = StdRng::seed_from_u64(9);
                alg.scheduler()
                    .run_into_reference_pressure(&inst, eps, &mut tie, &mut ws)
                    .unwrap()
                    .clone()
            };
            assert_eq!(
                inc.schedule_order, reference.schedule_order,
                "{alg:?}/eps{eps}: task sequence diverged"
            );
            for t in inst.dag.tasks() {
                let a = inc.replicas_of(t);
                let b = reference.replicas_of(t);
                assert_eq!(a.len(), b.len());
                for (ra, rb) in a.iter().zip(b) {
                    assert_eq!(ra.proc, rb.proc, "{alg:?}/eps{eps}: σ-set of {t:?}");
                    assert_eq!(ra.finish_lb.to_bits(), rb.finish_lb.to_bits());
                    assert_eq!(ra.finish_ub.to_bits(), rb.finish_ub.to_bits());
                }
            }
        }
    }
}
