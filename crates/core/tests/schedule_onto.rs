//! `schedule_onto` occupancy contract: an empty timeline is
//! bit-identical to `schedule_into`, and nonzero floors shift every
//! replica into the stream's absolute clock without reordering work.

use ftsched_core::{schedule_into, schedule_onto, Algorithm, ScheduleWorkspace};
use platform::gen::{paper_instance, PaperInstanceConfig};
use platform::OccupancyTimeline;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[test]
fn empty_occupancy_is_bit_identical_to_schedule_into() {
    for seed in 0..3u64 {
        let inst = paper_instance(&mut rng(seed), &PaperInstanceConfig::default());
        let occ = OccupancyTimeline::new(inst.num_procs());
        assert!(occ.is_empty());
        for alg in Algorithm::ALL {
            for eps in [0usize, 1, 2] {
                let mut ws_a = ScheduleWorkspace::new();
                let mut ws_b = ScheduleWorkspace::new();
                let a = schedule_into(&inst, eps, alg, &mut rng(seed + 7), &mut ws_a).unwrap();
                let b =
                    schedule_onto(&inst, eps, alg, &mut rng(seed + 7), &occ, &mut ws_b).unwrap();
                assert_eq!(
                    a.latency_lower_bound().to_bits(),
                    b.latency_lower_bound().to_bits(),
                    "{alg:?} eps={eps} seed={seed}"
                );
                assert_eq!(
                    a.latency_upper_bound().to_bits(),
                    b.latency_upper_bound().to_bits()
                );
                for t in inst.dag.tasks() {
                    let (ra, rb) = (a.replicas_of(t), b.replicas_of(t));
                    assert_eq!(ra.len(), rb.len());
                    for (x, y) in ra.iter().zip(rb) {
                        assert_eq!(x.proc, y.proc);
                        assert_eq!(x.start_lb.to_bits(), y.start_lb.to_bits());
                        assert_eq!(x.finish_lb.to_bits(), y.finish_lb.to_bits());
                        assert_eq!(x.start_ub.to_bits(), y.start_ub.to_bits());
                        assert_eq!(x.finish_ub.to_bits(), y.finish_ub.to_bits());
                    }
                }
            }
        }
    }
}

#[test]
fn advanced_floors_shift_all_starts_past_the_arrival() {
    let inst = paper_instance(&mut rng(42), &PaperInstanceConfig::default());
    let mut occ = OccupancyTimeline::new(inst.num_procs());
    occ.advance(100.0);
    for alg in Algorithm::ALL {
        let mut ws = ScheduleWorkspace::new();
        let s = schedule_onto(&inst, 1, alg, &mut rng(42), &occ, &mut ws).unwrap();
        for t in inst.dag.tasks() {
            for r in s.replicas_of(t) {
                assert!(
                    r.start_lb >= 100.0 - 1e-9,
                    "{alg:?}: replica starts before the occupancy floor"
                );
            }
        }
        assert!(s.latency_lower_bound() >= 100.0);
        ftsched_core::validate::validate(&inst, s).unwrap_or_else(|e| panic!("{alg:?}: {e}"));
    }
}

#[test]
fn per_processor_floors_steer_placement_and_times() {
    // Chain a -> b on two processors: P0 is fast (exec 1.0) but released
    // only at t = 50, P1 is slow (exec 10.0) and free at t = 0. Starting
    // from the floors, both fault-free replicas must wait for P0 anyway
    // (50 + 1 + 1 = 52 beats 10 + 10 = 20? no — 20 < 52, so the chain
    // runs on slow-but-free P1 instead). The floor changes the winning
    // processor, which is exactly the occupancy-aware eq. (1) decision.
    use platform::{ExecutionMatrix, Platform};
    use taskgraph::DagBuilder;

    let mut b = DagBuilder::new();
    let t0 = b.add_task(1.0);
    let t1 = b.add_task(1.0);
    b.add_edge(t0, t1, 0.0);
    let dag = b.build().unwrap();
    let plat = Platform::uniform_delay(2, 0.0);
    let exec = ExecutionMatrix::consistent(&dag, &[1.0, 0.1]);
    let inst = platform::Instance::new(dag, plat, exec);

    // Empty platform: both tasks pick fast P0 (finish at 2.0).
    let mut ws = ScheduleWorkspace::new();
    let empty = OccupancyTimeline::new(2);
    let s = schedule_onto(&inst, 0, Algorithm::Ftsa, &mut rng(1), &empty, &mut ws).unwrap();
    assert_eq!(s.replicas_of(t0)[0].proc.index(), 0);
    assert!((s.latency_lower_bound() - 2.0).abs() < 1e-9);

    // P0 occupied until t = 50: the chain reroutes to slow-but-free P1.
    let mut occ = OccupancyTimeline::new(2);
    occ.insert(0, 0.0, 50.0);
    let s = schedule_onto(&inst, 0, Algorithm::Ftsa, &mut rng(1), &occ, &mut ws).unwrap();
    assert_eq!(s.replicas_of(t0)[0].proc.index(), 1);
    assert_eq!(s.replicas_of(t1)[0].proc.index(), 1);
    assert!((s.replicas_of(t0)[0].start_lb - 0.0).abs() < 1e-9);
    assert!((s.latency_lower_bound() - 20.0).abs() < 1e-9);

    // P0 occupied only until t = 3: waiting for the fast processor wins
    // again (3 + 1 + 1 = 5 < 20), and the start honors the floor.
    let mut occ = OccupancyTimeline::new(2);
    occ.insert(0, 0.0, 3.0);
    let s = schedule_onto(&inst, 0, Algorithm::Ftsa, &mut rng(1), &occ, &mut ws).unwrap();
    assert_eq!(s.replicas_of(t0)[0].proc.index(), 0);
    assert!((s.replicas_of(t0)[0].start_lb - 3.0).abs() < 1e-9);
    assert!((s.latency_lower_bound() - 5.0).abs() < 1e-9);
}
