//! Golden bit-identity tests for the four paper algorithms.
//!
//! The snapshots under `tests/golden/` were generated from the *seed*
//! implementations (the pre-pipeline `ftsa.rs` / `mc_ftsa.rs` /
//! `ftbar.rs` loops) and pin every replica's processor and the raw IEEE
//! bits of all four timeline values, the schedule order, and the matched
//! communication pairs. The unified [`ftsched_core::pipeline`] must
//! reproduce them byte for byte: the refactor is a pure reorganization
//! of the same floating-point expressions and the same RNG stream.
//!
//! Regenerating (only legitimate when an *intentional* semantic change
//! lands, never to paper over a drift):
//!
//! ```text
//! FTSCHED_BLESS=1 cargo test -p ftsched-core --test golden
//! ```

use ftsched_core::{schedule, Algorithm, CommSelection, Schedule};
use platform::gen::{paper_instance, PaperInstanceConfig};
use platform::{ExecutionMatrix, Instance, Platform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::path::PathBuf;
use taskgraph::{DagBuilder, TaskId};

/// Bit-exact textual digest of a schedule: hex `f64::to_bits` for every
/// timeline value, so no decimal formatting can hide a drift.
fn digest(sched: &Schedule) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "epsilon {}", sched.epsilon);
    let order: Vec<String> = sched
        .schedule_order
        .iter()
        .map(|t| t.index().to_string())
        .collect();
    let _ = writeln!(out, "order {}", order.join(" "));
    for (ti, reps) in sched.tasks_replicas().enumerate() {
        for (k, r) in reps.iter().enumerate() {
            let _ = writeln!(
                out,
                "t{ti} r{k} p{} {:016x} {:016x} {:016x} {:016x}",
                r.proc.index(),
                r.start_lb.to_bits(),
                r.finish_lb.to_bits(),
                r.start_ub.to_bits(),
                r.finish_ub.to_bits(),
            );
        }
    }
    match &sched.comm {
        CommSelection::AllToAll => {
            let _ = writeln!(out, "comm all-to-all");
        }
        CommSelection::Matched(m) => {
            for (eid, pairs) in m.iter().enumerate() {
                let ps: Vec<String> = pairs.iter().map(|&(s, d)| format!("{s}>{d}")).collect();
                let _ = writeln!(out, "comm e{eid} {}", ps.join(" "));
            }
        }
    }
    out
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Fixed-shape diamond on a deterministic heterogeneous 5-proc platform.
fn diamond_instance() -> Instance {
    let mut b = DagBuilder::new();
    let t: Vec<TaskId> = (0..6).map(|i| b.add_task(10.0 + i as f64)).collect();
    b.add_edge(t[0], t[1], 5.0);
    b.add_edge(t[0], t[2], 7.0);
    b.add_edge(t[1], t[3], 5.0);
    b.add_edge(t[2], t[3], 3.0);
    b.add_edge(t[3], t[4], 11.0);
    b.add_edge(t[3], t[5], 2.0);
    let dag = b.build().unwrap();
    let plat = Platform::uniform_delay(5, 0.7);
    let exec = ExecutionMatrix::consistent(&dag, &[1.0, 1.5, 2.0, 0.5, 3.0]);
    Instance::new(dag, plat, exec)
}

/// The paper-style random layered instance used by the figures.
fn paper_seed_instance() -> Instance {
    let mut r = StdRng::seed_from_u64(0x601D);
    paper_instance(&mut r, &PaperInstanceConfig::default())
}

fn check(name: &str, inst: &Instance, eps: usize, alg: Algorithm, tie_seed: u64) {
    let mut rng = StdRng::seed_from_u64(tie_seed);
    let sched = schedule(inst, eps, alg, &mut rng).expect("schedulable");
    let got = digest(&sched);
    let path = golden_dir().join(format!("{name}.txt"));
    if std::env::var_os("FTSCHED_BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e} (run with FTSCHED_BLESS=1)", name));
    assert_eq!(
        got, want,
        "schedule digest for {name} drifted from the seed implementation"
    );
}

#[test]
fn paper_algorithms_bit_identical_to_seed() {
    let diamond = diamond_instance();
    let paper = paper_seed_instance();
    for alg in [
        Algorithm::Ftsa,
        Algorithm::McFtsaGreedy,
        Algorithm::McFtsaBottleneck,
        Algorithm::Ftbar,
    ] {
        let key = match alg {
            Algorithm::Ftsa => "ftsa",
            Algorithm::McFtsaGreedy => "mc-ftsa",
            Algorithm::McFtsaBottleneck => "mc-ftsa-bn",
            Algorithm::Ftbar => "ftbar",
            _ => unreachable!("only the four paper algorithms are pinned"),
        };
        for eps in [0usize, 1, 2] {
            check(
                &format!("diamond_{key}_eps{eps}"),
                &diamond,
                eps,
                alg,
                0xD1A_0000 + eps as u64,
            );
            check(
                &format!("paper_{key}_eps{eps}"),
                &paper,
                eps,
                alg,
                0x9A9E_0000 + eps as u64,
            );
        }
    }
}
