//! Cross-family property tests: every algorithm must produce valid,
//! bound-consistent schedules on every graph family the generators can
//! emit — not just the paper's layered instances.

use ftsched_core::bounds::critical_path_bound;
use ftsched_core::validate::validate;
use ftsched_core::{schedule, Algorithm};
use platform::gen::random_platform;
use platform::{ExecutionMatrix, Instance};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use taskgraph::generators::{
    erdos, fork_join, layered, series_parallel, ErdosConfig, ForkJoinConfig, LayeredConfig,
    SeriesParallelConfig,
};
use taskgraph::workloads::{
    cholesky, fft, gaussian_elimination, map_reduce, stencil_1d, wavefront,
};
use taskgraph::Dag;

#[derive(Debug, Clone, Copy)]
enum Family {
    Layered,
    Erdos,
    ForkJoin,
    SeriesParallel,
    Gauss,
    Fft,
    Cholesky,
    Stencil,
    MapReduce,
    Wavefront,
}

fn build(family: Family, seed: u64, size: usize) -> Dag {
    let mut rng = StdRng::seed_from_u64(seed);
    match family {
        Family::Layered => layered(&mut rng, &LayeredConfig::paper(size.max(1))),
        Family::Erdos => erdos(&mut rng, &ErdosConfig::sparse(size.max(1))),
        Family::ForkJoin => fork_join(&mut rng, &ForkJoinConfig::new(size % 4 + 1, size % 6 + 1)),
        Family::SeriesParallel => {
            series_parallel(&mut rng, &SeriesParallelConfig::new(size.max(2)))
        }
        Family::Gauss => gaussian_elimination(size % 8 + 2, 5.0, 2.0),
        Family::Fft => fft(1 << (size % 4 + 1), 8.0, 12.0),
        Family::Cholesky => cholesky(size % 6 + 2, 6.0, 9.0),
        Family::Stencil => stencil_1d(size % 5 + 2, size % 4 + 2, 7.0, 11.0),
        Family::MapReduce => map_reduce(size % 6 + 1, size % 3 + 1, 9.0, 13.0, 6.0),
        Family::Wavefront => wavefront(size % 5 + 2, size % 4 + 2, 8.0, 10.0),
    }
}

fn family_strategy() -> impl Strategy<Value = Family> {
    prop_oneof![
        Just(Family::Layered),
        Just(Family::Erdos),
        Just(Family::ForkJoin),
        Just(Family::SeriesParallel),
        Just(Family::Gauss),
        Just(Family::Fft),
        Just(Family::Cholesky),
        Just(Family::Stencil),
        Just(Family::MapReduce),
        Just(Family::Wavefront),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_family_schedules_validly(
        family in family_strategy(),
        seed in 0u64..5_000,
        size in 4usize..40,
        procs in 3usize..9,
        eps_raw in 0usize..3,
    ) {
        let eps = eps_raw.min(procs - 1);
        let dag = build(family, seed, size);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA111);
        let platform = random_platform(&mut rng, procs, 0.5, 1.0);
        let exec = ExecutionMatrix::unrelated_with_procs(&dag, procs, &mut rng, 0.5);
        let inst = Instance::new(dag, platform, exec);
        let cp = critical_path_bound(&inst);
        // Every algorithm — the four paper configurations and the
        // pipeline cross-combinations alike — must stay valid and
        // bound-consistent on every family.
        for alg in Algorithm::ALL {
            let mut tie = StdRng::seed_from_u64(seed);
            let s = schedule(&inst, eps, alg, &mut tie).unwrap();
            validate(&inst, &s)
                .map_err(|e| TestCaseError::fail(format!("{family:?}/{alg:?}: {e}")))?;
            prop_assert!(s.latency_lower_bound() <= s.latency_upper_bound() + 1e-6);
            prop_assert!(s.latency_lower_bound() >= cp - 1e-6);
        }
    }

    /// With ε = 0 there is exactly one replica per task and exactly one
    /// sender per input, so MC-FTSA degenerates to FTSA: identical
    /// placements and latencies.
    #[test]
    fn mc_ftsa_degenerates_to_ftsa_without_replication(
        family in family_strategy(),
        seed in 0u64..5_000,
        size in 4usize..30,
        procs in 3usize..8,
    ) {
        let dag = build(family, seed, size);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDE6E);
        let platform = random_platform(&mut rng, procs, 0.5, 1.0);
        let exec = ExecutionMatrix::unrelated_with_procs(&dag, procs, &mut rng, 0.5);
        let inst = Instance::new(dag, platform, exec);
        let f = schedule(&inst, 0, Algorithm::Ftsa, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let mc = schedule(
            &inst,
            0,
            Algorithm::McFtsaGreedy,
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap();
        prop_assert_eq!(f.replica_lists(), mc.replica_lists());
        prop_assert!((f.latency_lower_bound() - mc.latency_lower_bound()).abs() < 1e-9);
        prop_assert_eq!(f.message_count(&inst.dag), mc.message_count(&inst.dag));
    }

    /// Schedule statistics stay within their defined ranges on every
    /// family.
    #[test]
    fn stats_well_formed_everywhere(
        family in family_strategy(),
        seed in 0u64..3_000,
        size in 4usize..30,
    ) {
        let dag = build(family, seed, size);
        let procs = 6usize;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x57A7);
        let platform = random_platform(&mut rng, procs, 0.5, 1.0);
        let exec = ExecutionMatrix::unrelated_with_procs(&dag, procs, &mut rng, 0.5);
        let inst = Instance::new(dag, platform, exec);
        let s = schedule(&inst, 1, Algorithm::Ftsa, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let st = ftsched_core::stats::schedule_stats(&inst, &s);
        prop_assert!(st.mean_utilization > 0.0 && st.mean_utilization <= 1.0 + 1e-9);
        prop_assert!(st.load_imbalance >= 1.0);
        prop_assert!((0.0..=1.0).contains(&st.replication_compute_share));
        prop_assert_eq!(st.replicas, inst.num_tasks() * 2);
    }
}
