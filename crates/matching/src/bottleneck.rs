//! Bottleneck (min–max weight) left-perfect matching with forced edges.
//!
//! Implements the first selector of Section 4.2: "For any value of T, we
//! can find in polynomial time if there exists a subset whose largest edge
//! weight does not exceed T. […] We perform a binary search on T to
//! determine the smallest value that leads to a solution. Note that T is
//! searched in the set of edge weights, hence the overall complexity of the
//! algorithm remains polynomial."
//!
//! Forced edges model the internal communications required by the proof of
//! Proposition 4.3: when a processor executes both the predecessor and the
//! task itself, its replica of the predecessor *must* send to itself.
//! Forced edges are always part of the solution; their weights participate
//! in the reported bottleneck but not in the binary search domain unless
//! they dominate.

use crate::bipartite::BipartiteGraph;
use crate::hopcroft_karp::{maximum_matching_csr_into, HopcroftKarpScratch};
use crate::Matching;

/// Reusable buffers for [`bottleneck_matching_into`]: the fixed-endpoint
/// marks, the sorted threshold candidates, the flat CSR adjacency of the
/// `≤ T` residual subgraph, and the Hopcroft–Karp working set.
#[derive(Debug, Clone, Default)]
pub struct BottleneckScratch {
    left_fixed: Vec<bool>,
    right_fixed: Vec<bool>,
    free_left: Vec<usize>,
    weights: Vec<f64>,
    adj_off: Vec<usize>,
    adj_cursor: Vec<usize>,
    adj_edges: Vec<usize>,
    hk: HopcroftKarpScratch,
}

/// Finds a left-perfect matching minimizing the maximum selected edge
/// weight, subject to `forced` pairs being selected. Returns `None` when no
/// left-perfect matching exists at all.
///
/// `forced` pairs must reference existing edges and be pairwise disjoint in
/// both endpoints.
///
/// ```
/// use matching::{BipartiteGraph, bottleneck_matching};
/// let mut g = BipartiteGraph::new(2, 2);
/// g.add_edge(0, 0, 1.0);
/// g.add_edge(0, 1, 9.0);
/// g.add_edge(1, 0, 2.0);
/// g.add_edge(1, 1, 3.0);
/// let m = bottleneck_matching(&g, &[]).unwrap();
/// assert_eq!(m.bottleneck, 3.0); // {0-0, 1-1} beats {0-1, 1-0}
/// ```
pub fn bottleneck_matching(g: &BipartiteGraph, forced: &[(usize, usize)]) -> Option<Matching> {
    let mut scratch = BottleneckScratch::default();
    let mut pairs = Vec::with_capacity(g.n_left());
    if bottleneck_matching_into(g, forced, &mut scratch, &mut pairs) {
        Some(Matching::from_pairs(g, pairs))
    } else {
        None
    }
}

/// Rebuilds the `≤ threshold` residual CSR adjacency and reports whether a
/// maximum matching on it saturates every free left node. Edge indices stay
/// in ascending order per left node — the same per-node order the previous
/// nested-`Vec` construction produced, so the Hopcroft–Karp traversal (and
/// therefore the selected matching) is unchanged.
#[allow(clippy::too_many_arguments)]
fn feasible(
    g: &BipartiteGraph,
    threshold: f64,
    left_fixed: &[bool],
    right_fixed: &[bool],
    free_left: &[usize],
    adj_off: &mut Vec<usize>,
    adj_cursor: &mut Vec<usize>,
    adj_edges: &mut Vec<usize>,
    hk: &mut HopcroftKarpScratch,
) -> bool {
    let n_left = g.n_left();
    adj_off.clear();
    adj_off.resize(n_left + 1, 0);
    for e in g.edges() {
        if e.weight <= threshold && !left_fixed[e.left] && !right_fixed[e.right] {
            adj_off[e.left + 1] += 1;
        }
    }
    for l in 0..n_left {
        adj_off[l + 1] += adj_off[l];
    }
    adj_cursor.clear();
    adj_cursor.extend_from_slice(&adj_off[..n_left]);
    adj_edges.clear();
    adj_edges.resize(adj_off[n_left], 0);
    for (i, e) in g.edges().iter().enumerate() {
        if e.weight <= threshold && !left_fixed[e.left] && !right_fixed[e.right] {
            adj_edges[adj_cursor[e.left]] = i;
            adj_cursor[e.left] += 1;
        }
    }
    maximum_matching_csr_into(g, adj_off, adj_edges, hk);
    free_left.iter().all(|&l| hk.match_left[l] != usize::MAX)
}

/// [`bottleneck_matching`] writing the selected pairs into a caller-provided
/// buffer — the zero-allocation form used by the scheduler's matched
/// placement. `pairs` is cleared first and, on success (`true`), holds the
/// forced pairs followed by the optimal free assignment in `free_left`
/// order — exactly the pair sequence [`bottleneck_matching`] records. On
/// failure (`false`) `pairs` holds only the forced pairs.
pub fn bottleneck_matching_into(
    g: &BipartiteGraph,
    forced: &[(usize, usize)],
    scratch: &mut BottleneckScratch,
    pairs: &mut Vec<(usize, usize)>,
) -> bool {
    let n_left = g.n_left();
    pairs.clear();

    // Validate forced pairs and mark their endpoints as excluded from the
    // search; the search runs on the residual graph.
    let left_fixed = &mut scratch.left_fixed;
    let right_fixed = &mut scratch.right_fixed;
    left_fixed.clear();
    left_fixed.resize(n_left, false);
    right_fixed.clear();
    right_fixed.resize(g.n_right(), false);
    for &(l, r) in forced {
        assert!(
            g.weight(l, r).is_some(),
            "forced pair ({l}, {r}) is not an edge"
        );
        assert!(
            !left_fixed[l] && !right_fixed[r],
            "forced pairs must be disjoint"
        );
        left_fixed[l] = true;
        right_fixed[r] = true;
        pairs.push((l, r));
    }

    let free_left = &mut scratch.free_left;
    free_left.clear();
    free_left.extend((0..n_left).filter(|&l| !left_fixed[l]));
    if free_left.is_empty() {
        return true;
    }

    // Candidate thresholds: the distinct weights of usable residual edges.
    // The unstable sort is allocation-free; with `total_cmp` equal keys are
    // bitwise-identical, so after `dedup` the result matches a stable sort.
    let weights = &mut scratch.weights;
    weights.clear();
    weights.extend(
        g.edges()
            .iter()
            .filter(|e| !left_fixed[e.left] && !right_fixed[e.right])
            .map(|e| e.weight),
    );
    weights.sort_unstable_by(f64::total_cmp);
    weights.dedup();
    if weights.is_empty() {
        return false; // free left nodes but no usable edges
    }

    // Binary search for the smallest feasible threshold.
    macro_rules! feasible_at {
        ($t:expr) => {
            feasible(
                g,
                $t,
                left_fixed,
                right_fixed,
                free_left,
                &mut scratch.adj_off,
                &mut scratch.adj_cursor,
                &mut scratch.adj_edges,
                &mut scratch.hk,
            )
        };
    }
    if !feasible_at!(*weights.last().expect("nonempty")) {
        return false;
    }
    let mut lo = 0usize; // invariant: weights[hi] feasible
    let mut hi = weights.len() - 1;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible_at!(weights[mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let ok = feasible_at!(weights[hi]);
    debug_assert!(ok, "binary search invariant");

    pairs.extend(free_left.iter().map(|&l| (l, scratch.hk.match_left[l])));
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted(n: usize, edges: &[(usize, usize, f64)]) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(n, n);
        for &(l, r, w) in edges {
            g.add_edge(l, r, w);
        }
        g
    }

    /// Exhaustive bottleneck optimum over all left-perfect matchings.
    fn brute_bottleneck(g: &BipartiteGraph, forced: &[(usize, usize)]) -> Option<f64> {
        fn go(
            g: &BipartiteGraph,
            l: usize,
            used: &mut Vec<bool>,
            left_fixed: &[bool],
            current: f64,
            best: &mut Option<f64>,
        ) {
            if l == g.n_left() {
                *best = Some(best.map_or(current, |b: f64| b.min(current)));
                return;
            }
            if left_fixed[l] {
                go(g, l + 1, used, left_fixed, current, best);
                return;
            }
            for e in g.edges().iter().filter(|e| e.left == l) {
                if !used[e.right] {
                    used[e.right] = true;
                    go(g, l + 1, used, left_fixed, current.max(e.weight), best);
                    used[e.right] = false;
                }
            }
        }
        let mut used = vec![false; g.n_right()];
        let mut left_fixed = vec![false; g.n_left()];
        let mut base = f64::NEG_INFINITY;
        for &(l, r) in forced {
            used[r] = true;
            left_fixed[l] = true;
            base = base.max(g.weight(l, r).unwrap());
        }
        let mut best = None;
        go(g, 0, &mut used, &left_fixed, base, &mut best);
        best
    }

    #[test]
    fn picks_min_max_assignment() {
        let g = weighted(
            3,
            &[
                (0, 0, 4.0),
                (0, 1, 1.0),
                (0, 2, 3.0),
                (1, 0, 2.0),
                (1, 1, 5.0),
                (1, 2, 9.0),
                (2, 0, 6.0),
                (2, 1, 7.0),
                (2, 2, 3.0),
            ],
        );
        let m = bottleneck_matching(&g, &[]).unwrap();
        assert!(m.is_left_perfect(3));
        assert_eq!(m.bottleneck, brute_bottleneck(&g, &[]).unwrap());
        assert_eq!(m.bottleneck, 3.0); // 0->1(1), 1->0(2), 2->2(3)
    }

    #[test]
    fn infeasible_returns_none() {
        // Left node 1 has no edges.
        let g = weighted(2, &[(0, 0, 1.0), (0, 1, 2.0)]);
        assert!(bottleneck_matching(&g, &[]).is_none());
    }

    #[test]
    fn forced_edge_respected_even_if_heavy() {
        let g = weighted(2, &[(0, 0, 100.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0)]);
        let m = bottleneck_matching(&g, &[(0, 0)]).unwrap();
        assert!(m.pairs.contains(&(0, 0)));
        assert!(m.pairs.contains(&(1, 1)));
        assert_eq!(m.bottleneck, 100.0);
    }

    #[test]
    fn all_forced() {
        let g = weighted(2, &[(0, 0, 3.0), (1, 1, 7.0)]);
        let m = bottleneck_matching(&g, &[(0, 0), (1, 1)]).unwrap();
        assert_eq!(m.pairs.len(), 2);
        assert_eq!(m.bottleneck, 7.0);
        assert!(m.is_left_perfect(2));
    }

    #[test]
    fn forced_blocking_makes_infeasible() {
        // Forcing 0->0 leaves node 1 with no free right node.
        let g = weighted(2, &[(0, 0, 1.0), (1, 0, 1.0)]);
        assert!(bottleneck_matching(&g, &[(0, 0)]).is_none());
    }

    #[test]
    fn single_node() {
        let g = weighted(1, &[(0, 0, 42.0)]);
        let m = bottleneck_matching(&g, &[]).unwrap();
        assert_eq!(m.pairs, vec![(0, 0)]);
        assert_eq!(m.bottleneck, 42.0);
    }

    #[test]
    fn matches_brute_force_on_dense_cases() {
        // Deterministic pseudo-random dense instances.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 10.0
        };
        for n in 2..=5 {
            let mut g = BipartiteGraph::new(n, n);
            for l in 0..n {
                for r in 0..n {
                    g.add_edge(l, r, next());
                }
            }
            let m = bottleneck_matching(&g, &[]).unwrap();
            assert!(m.is_left_perfect(n));
            assert_eq!(m.bottleneck, brute_bottleneck(&g, &[]).unwrap(), "n={n}");
        }
    }
}
