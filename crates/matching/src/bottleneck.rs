//! Bottleneck (min–max weight) left-perfect matching with forced edges.
//!
//! Implements the first selector of Section 4.2: "For any value of T, we
//! can find in polynomial time if there exists a subset whose largest edge
//! weight does not exceed T. […] We perform a binary search on T to
//! determine the smallest value that leads to a solution. Note that T is
//! searched in the set of edge weights, hence the overall complexity of the
//! algorithm remains polynomial."
//!
//! Forced edges model the internal communications required by the proof of
//! Proposition 4.3: when a processor executes both the predecessor and the
//! task itself, its replica of the predecessor *must* send to itself.
//! Forced edges are always part of the solution; their weights participate
//! in the reported bottleneck but not in the binary search domain unless
//! they dominate.

use crate::bipartite::BipartiteGraph;
use crate::hopcroft_karp::maximum_matching_with_adjacency;
use crate::Matching;

/// Finds a left-perfect matching minimizing the maximum selected edge
/// weight, subject to `forced` pairs being selected. Returns `None` when no
/// left-perfect matching exists at all.
///
/// `forced` pairs must reference existing edges and be pairwise disjoint in
/// both endpoints.
///
/// ```
/// use matching::{BipartiteGraph, bottleneck_matching};
/// let mut g = BipartiteGraph::new(2, 2);
/// g.add_edge(0, 0, 1.0);
/// g.add_edge(0, 1, 9.0);
/// g.add_edge(1, 0, 2.0);
/// g.add_edge(1, 1, 3.0);
/// let m = bottleneck_matching(&g, &[]).unwrap();
/// assert_eq!(m.bottleneck, 3.0); // {0-0, 1-1} beats {0-1, 1-0}
/// ```
pub fn bottleneck_matching(g: &BipartiteGraph, forced: &[(usize, usize)]) -> Option<Matching> {
    let n_left = g.n_left();

    // Validate forced pairs and mark their endpoints as excluded from the
    // search; the search runs on the residual graph.
    let mut left_fixed = vec![false; n_left];
    let mut right_fixed = vec![false; g.n_right()];
    let mut forced_bottleneck = f64::NEG_INFINITY;
    for &(l, r) in forced {
        let w = g
            .weight(l, r)
            .unwrap_or_else(|| panic!("forced pair ({l}, {r}) is not an edge"));
        assert!(
            !left_fixed[l] && !right_fixed[r],
            "forced pairs must be disjoint"
        );
        left_fixed[l] = true;
        right_fixed[r] = true;
        forced_bottleneck = forced_bottleneck.max(w);
    }

    let free_left: Vec<usize> = (0..n_left).filter(|&l| !left_fixed[l]).collect();
    if free_left.is_empty() {
        return Some(Matching::from_pairs(g, forced.to_vec()));
    }

    // Candidate thresholds: the distinct weights of usable residual edges.
    let mut weights: Vec<f64> = g
        .edges()
        .iter()
        .filter(|e| !left_fixed[e.left] && !right_fixed[e.right])
        .map(|e| e.weight)
        .collect();
    weights.sort_by(f64::total_cmp);
    weights.dedup();
    if weights.is_empty() {
        return None; // free left nodes but no usable edges
    }

    // Feasibility oracle: does the ≤ threshold residual subgraph saturate
    // all free left nodes?
    let residual_adjacency = |threshold: f64| -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); n_left];
        for (i, e) in g.edges().iter().enumerate() {
            if e.weight <= threshold && !left_fixed[e.left] && !right_fixed[e.right] {
                adj[e.left].push(i);
            }
        }
        adj
    };
    let feasible = |threshold: f64| -> Option<Vec<(usize, usize)>> {
        let adj = residual_adjacency(threshold);
        let m = maximum_matching_with_adjacency(g, &adj);
        if free_left.iter().all(|&l| m.match_left[l].is_some()) {
            Some(
                free_left
                    .iter()
                    .map(|&l| (l, m.match_left[l].expect("saturated")))
                    .collect(),
            )
        } else {
            None
        }
    };

    // Binary search for the smallest feasible threshold.
    feasible(*weights.last().expect("nonempty"))?;
    let mut lo = 0usize; // invariant: weights[hi] feasible
    let mut hi = weights.len() - 1;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible(weights[mid]).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let pairs_free = feasible(weights[hi]).expect("binary search invariant");

    let mut pairs = forced.to_vec();
    pairs.extend(pairs_free);
    Some(Matching::from_pairs(g, pairs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted(n: usize, edges: &[(usize, usize, f64)]) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(n, n);
        for &(l, r, w) in edges {
            g.add_edge(l, r, w);
        }
        g
    }

    /// Exhaustive bottleneck optimum over all left-perfect matchings.
    fn brute_bottleneck(g: &BipartiteGraph, forced: &[(usize, usize)]) -> Option<f64> {
        fn go(
            g: &BipartiteGraph,
            l: usize,
            used: &mut Vec<bool>,
            left_fixed: &[bool],
            current: f64,
            best: &mut Option<f64>,
        ) {
            if l == g.n_left() {
                *best = Some(best.map_or(current, |b: f64| b.min(current)));
                return;
            }
            if left_fixed[l] {
                go(g, l + 1, used, left_fixed, current, best);
                return;
            }
            for e in g.edges().iter().filter(|e| e.left == l) {
                if !used[e.right] {
                    used[e.right] = true;
                    go(g, l + 1, used, left_fixed, current.max(e.weight), best);
                    used[e.right] = false;
                }
            }
        }
        let mut used = vec![false; g.n_right()];
        let mut left_fixed = vec![false; g.n_left()];
        let mut base = f64::NEG_INFINITY;
        for &(l, r) in forced {
            used[r] = true;
            left_fixed[l] = true;
            base = base.max(g.weight(l, r).unwrap());
        }
        let mut best = None;
        go(g, 0, &mut used, &left_fixed, base, &mut best);
        best
    }

    #[test]
    fn picks_min_max_assignment() {
        let g = weighted(
            3,
            &[
                (0, 0, 4.0),
                (0, 1, 1.0),
                (0, 2, 3.0),
                (1, 0, 2.0),
                (1, 1, 5.0),
                (1, 2, 9.0),
                (2, 0, 6.0),
                (2, 1, 7.0),
                (2, 2, 3.0),
            ],
        );
        let m = bottleneck_matching(&g, &[]).unwrap();
        assert!(m.is_left_perfect(3));
        assert_eq!(m.bottleneck, brute_bottleneck(&g, &[]).unwrap());
        assert_eq!(m.bottleneck, 3.0); // 0->1(1), 1->0(2), 2->2(3)
    }

    #[test]
    fn infeasible_returns_none() {
        // Left node 1 has no edges.
        let g = weighted(2, &[(0, 0, 1.0), (0, 1, 2.0)]);
        assert!(bottleneck_matching(&g, &[]).is_none());
    }

    #[test]
    fn forced_edge_respected_even_if_heavy() {
        let g = weighted(2, &[(0, 0, 100.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0)]);
        let m = bottleneck_matching(&g, &[(0, 0)]).unwrap();
        assert!(m.pairs.contains(&(0, 0)));
        assert!(m.pairs.contains(&(1, 1)));
        assert_eq!(m.bottleneck, 100.0);
    }

    #[test]
    fn all_forced() {
        let g = weighted(2, &[(0, 0, 3.0), (1, 1, 7.0)]);
        let m = bottleneck_matching(&g, &[(0, 0), (1, 1)]).unwrap();
        assert_eq!(m.pairs.len(), 2);
        assert_eq!(m.bottleneck, 7.0);
        assert!(m.is_left_perfect(2));
    }

    #[test]
    fn forced_blocking_makes_infeasible() {
        // Forcing 0->0 leaves node 1 with no free right node.
        let g = weighted(2, &[(0, 0, 1.0), (1, 0, 1.0)]);
        assert!(bottleneck_matching(&g, &[(0, 0)]).is_none());
    }

    #[test]
    fn single_node() {
        let g = weighted(1, &[(0, 0, 42.0)]);
        let m = bottleneck_matching(&g, &[]).unwrap();
        assert_eq!(m.pairs, vec![(0, 0)]);
        assert_eq!(m.bottleneck, 42.0);
    }

    #[test]
    fn matches_brute_force_on_dense_cases() {
        // Deterministic pseudo-random dense instances.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 10.0
        };
        for n in 2..=5 {
            let mut g = BipartiteGraph::new(n, n);
            for l in 0..n {
                for r in 0..n {
                    g.add_edge(l, r, next());
                }
            }
            let m = bottleneck_matching(&g, &[]).unwrap();
            assert!(m.is_left_perfect(n));
            assert_eq!(m.bottleneck, brute_bottleneck(&g, &[]).unwrap(), "n={n}");
        }
    }
}
