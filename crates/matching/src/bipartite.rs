//! Weighted bipartite graph representation.

/// A weighted edge between left node `left` and right node `right`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Left endpoint (sender side in MC-FTSA).
    pub left: usize,
    /// Right endpoint (receiver side in MC-FTSA).
    pub right: usize,
    /// Edge weight; in MC-FTSA the completion time of the receiver if this
    /// were its only incoming communication.
    pub weight: f64,
}

/// A weighted bipartite graph with `n_left` left and `n_right` right nodes.
///
/// ```
/// use matching::BipartiteGraph;
/// let mut g = BipartiteGraph::new(2, 2);
/// g.add_edge(0, 1, 3.5);
/// assert_eq!(g.weight(0, 1), Some(3.5));
/// assert_eq!(g.weight(0, 0), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BipartiteGraph {
    n_left: usize,
    n_right: usize,
    edges: Vec<Edge>,
}

impl BipartiteGraph {
    /// Creates an empty graph with the given side sizes.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        BipartiteGraph {
            n_left,
            n_right,
            edges: Vec::new(),
        }
    }

    /// Clears the graph in place and sets new side sizes, keeping the
    /// edge buffer's capacity. The scheduler's matched-communication
    /// placement rebuilds one graph per predecessor this way, so its
    /// steady state performs no allocation.
    pub fn reset(&mut self, n_left: usize, n_right: usize) {
        self.n_left = n_left;
        self.n_right = n_right;
        self.edges.clear();
    }

    /// Number of left nodes.
    #[inline]
    pub fn n_left(&self) -> usize {
        self.n_left
    }

    /// Number of right nodes.
    #[inline]
    pub fn n_right(&self) -> usize {
        self.n_right
    }

    /// All edges, in insertion order.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Adds an edge. Parallel edges are allowed (the lighter one will win
    /// in any selector); weights must be finite.
    pub fn add_edge(&mut self, left: usize, right: usize, weight: f64) {
        assert!(left < self.n_left, "left node {left} out of range");
        assert!(right < self.n_right, "right node {right} out of range");
        assert!(weight.is_finite(), "edge weight must be finite");
        self.edges.push(Edge {
            left,
            right,
            weight,
        });
    }

    /// Weight of the lightest edge `(left, right)` if any exists.
    pub fn weight(&self, left: usize, right: usize) -> Option<f64> {
        self.edges
            .iter()
            .filter(|e| e.left == left && e.right == right)
            .map(|e| e.weight)
            .fold(None, |acc, w| Some(acc.map_or(w, |a: f64| a.min(w))))
    }

    /// Left-side adjacency lists of edge indices.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n_left];
        for (i, e) in self.edges.iter().enumerate() {
            adj[e.left].push(i);
        }
        adj
    }

    /// Left-side adjacency restricted to edges with `weight <= threshold`.
    pub fn adjacency_up_to(&self, threshold: f64) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n_left];
        for (i, e) in self.edges.iter().enumerate() {
            if e.weight <= threshold {
                adj[e.left].push(i);
            }
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_picks_lightest_parallel_edge() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 0, 5.0);
        g.add_edge(0, 0, 2.0);
        assert_eq!(g.weight(0, 0), Some(2.0));
    }

    #[test]
    fn adjacency_threshold_filters() {
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0, 1.0);
        g.add_edge(0, 1, 10.0);
        g.add_edge(1, 1, 5.0);
        let adj = g.adjacency_up_to(5.0);
        assert_eq!(adj[0].len(), 1);
        assert_eq!(adj[1].len(), 1);
        let all = g.adjacency();
        assert_eq!(all[0].len(), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_range_left_panics() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(1, 0, 1.0);
    }

    #[test]
    #[should_panic]
    fn non_finite_weight_panics() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 0, f64::INFINITY);
    }
}
