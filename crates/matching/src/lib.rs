//! Bipartite matching machinery for the MC-FTSA communication selector.
//!
//! Section 4.2 of the FTSA paper (Benoit–Hakem–Robert, RR-6418) reduces the
//! number of replication-induced messages from `e(ε+1)²` to `e(ε+1)` by
//! choosing, for every precedence edge `(t', t)`, a set of `ε+1`
//! communications forming a one-to-one mapping between the processors of
//! `A(t')` (senders) and `A(t)` (receivers), with *forced* internal edges
//! whenever a processor belongs to both sets (Proposition 4.3).
//!
//! Two selectors are offered, exactly as the paper describes:
//!
//! * [`bottleneck_matching`] — the polynomial-time optimal variant: binary
//!   search on the threshold `T` over the set of edge weights, feasibility
//!   decided by a maximum-matching ([Hopcroft–Karp][hopcroft_karp]) run on
//!   the `≤ T` subgraph.
//! * [`greedy_matching`] — the greedy variant used in the paper's
//!   experiments: forced internal edges first, then edges in non-decreasing
//!   weight order, keeping an edge iff it saturates a new left node *and* a
//!   new right node.
//!
//! The crate is self-contained and generic; the scheduler core builds the
//! per-predecessor bipartite graphs and interprets the returned pairs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bipartite;
pub mod bottleneck;
pub mod greedy;
pub mod hopcroft_karp;

pub use bipartite::{BipartiteGraph, Edge};
pub use bottleneck::{bottleneck_matching, bottleneck_matching_into, BottleneckScratch};
pub use greedy::{greedy_matching, greedy_matching_into, GreedyScratch};
pub use hopcroft_karp::{maximum_matching, HopcroftKarpScratch, MatchResult};

/// A selected set of communications: one `(left, right)` pair per edge of
/// the matching, plus the bottleneck (largest selected weight).
#[derive(Debug, Clone, PartialEq)]
pub struct Matching {
    /// Selected `(left, right)` pairs, including any forced edges.
    pub pairs: Vec<(usize, usize)>,
    /// The largest weight among selected edges (`-inf` if empty).
    pub bottleneck: f64,
}

impl Matching {
    /// Builds a matching and computes its bottleneck from the graph.
    pub(crate) fn from_pairs(g: &BipartiteGraph, pairs: Vec<(usize, usize)>) -> Self {
        let bottleneck = pairs
            .iter()
            .map(|&(l, r)| g.weight(l, r).expect("selected pair must be an edge"))
            .fold(f64::NEG_INFINITY, f64::max);
        Matching { pairs, bottleneck }
    }

    /// True iff every left node in `0..n_left` appears exactly once and no
    /// right node appears twice — i.e. the pairs form a left-perfect
    /// matching (what Proposition 4.3 calls a *robust* set).
    pub fn is_left_perfect(&self, n_left: usize) -> bool {
        let mut left_seen = vec![false; n_left];
        let mut right_seen = std::collections::HashSet::new();
        for &(l, r) in &self.pairs {
            if l >= n_left || left_seen[l] || !right_seen.insert(r) {
                return false;
            }
            left_seen[l] = true;
        }
        left_seen.iter().all(|&s| s)
    }
}
