//! Hopcroft–Karp maximum bipartite matching in `O(E √V)`.
//!
//! Used as the feasibility oracle of the bottleneck selector: the paper's
//! polynomial algorithm "suppresses all edges of weight larger than T and
//! runs a maximal matching algorithm (which is polynomial since the graph
//! is bipartite) that will cover all source nodes if such a cover
//! exists".

use crate::bipartite::BipartiteGraph;

/// Result of a maximum-matching computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchResult {
    /// Number of matched pairs.
    pub size: usize,
    /// `match_left[l]` = the right node matched to left node `l`.
    pub match_left: Vec<Option<usize>>,
    /// `match_right[r]` = the left node matched to right node `r`.
    pub match_right: Vec<Option<usize>>,
}

impl MatchResult {
    /// Whether every left node is matched.
    pub fn saturates_left(&self) -> bool {
        self.match_left.iter().all(|m| m.is_some())
    }

    /// The matched pairs as `(left, right)` tuples.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        self.match_left
            .iter()
            .enumerate()
            .filter_map(|(l, r)| r.map(|r| (l, r)))
            .collect()
    }
}

const INF: u32 = u32::MAX;

/// Reusable buffers for [`maximum_matching_csr_into`]. After a call,
/// `match_left` / `match_right` hold the computed matching with
/// `usize::MAX` as the "unmatched" sentinel.
#[derive(Debug, Clone, Default)]
pub struct HopcroftKarpScratch {
    /// `match_left[l]` = right node matched to `l`, or `usize::MAX`.
    pub match_left: Vec<usize>,
    /// `match_right[r]` = left node matched to `r`, or `usize::MAX`.
    pub match_right: Vec<usize>,
    dist: Vec<u32>,
    queue: std::collections::VecDeque<usize>,
}

/// Computes a maximum matching of `g` using Hopcroft–Karp.
pub fn maximum_matching(g: &BipartiteGraph) -> MatchResult {
    maximum_matching_with_adjacency(g, &g.adjacency())
}

/// [`maximum_matching_with_adjacency`] over a flat CSR adjacency, reusing
/// caller-provided buffers — the zero-allocation form used by the
/// bottleneck selector's feasibility oracle. `adj_edges[adj_off[l]..adj_off[l + 1]]`
/// holds the edge indices of left node `l`, in the same per-node order the
/// nested-`Vec` layout would list them. Returns the matching size; the
/// matching itself is left in `scratch.match_left` / `scratch.match_right`.
pub fn maximum_matching_csr_into(
    g: &BipartiteGraph,
    adj_off: &[usize],
    adj_edges: &[usize],
    scratch: &mut HopcroftKarpScratch,
) -> usize {
    let n_left = g.n_left();
    let n_right = g.n_right();
    let edges = g.edges();

    let match_left = &mut scratch.match_left;
    let match_right = &mut scratch.match_right;
    let dist = &mut scratch.dist;
    let queue = &mut scratch.queue;
    match_left.clear();
    match_left.resize(n_left, usize::MAX);
    match_right.clear();
    match_right.resize(n_right, usize::MAX);
    dist.clear();
    dist.resize(n_left, INF);
    let mut size = 0usize;

    loop {
        // BFS phase: layer unmatched left nodes.
        queue.clear();
        for l in 0..n_left {
            if match_left[l] == usize::MAX {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_augmenting = false;
        while let Some(l) = queue.pop_front() {
            for &ei in &adj_edges[adj_off[l]..adj_off[l + 1]] {
                let r = edges[ei].right;
                let l2 = match_right[r];
                if l2 == usize::MAX {
                    found_augmenting = true;
                } else if dist[l2] == INF {
                    dist[l2] = dist[l] + 1;
                    queue.push_back(l2);
                }
            }
        }
        if !found_augmenting {
            break;
        }

        // DFS phase: find vertex-disjoint shortest augmenting paths.
        fn dfs(
            l: usize,
            edges: &[crate::bipartite::Edge],
            adj_off: &[usize],
            adj_edges: &[usize],
            match_left: &mut [usize],
            match_right: &mut [usize],
            dist: &mut [u32],
        ) -> bool {
            for &ei in &adj_edges[adj_off[l]..adj_off[l + 1]] {
                let r = edges[ei].right;
                let l2 = match_right[r];
                if l2 == usize::MAX
                    || (dist[l2] == dist[l] + 1
                        && dfs(l2, edges, adj_off, adj_edges, match_left, match_right, dist))
                {
                    match_left[l] = r;
                    match_right[r] = l;
                    return true;
                }
            }
            dist[l] = INF;
            false
        }

        for l in 0..n_left {
            if match_left[l] == usize::MAX
                && dist[l] == 0
                && dfs(l, edges, adj_off, adj_edges, match_left, match_right, dist)
            {
                size += 1;
            }
        }
    }

    size
}

/// Computes a maximum matching over a caller-filtered adjacency (e.g. the
/// `≤ T` subgraph of the bottleneck search). `adj[l]` holds indices into
/// `g.edges()`.
pub fn maximum_matching_with_adjacency(g: &BipartiteGraph, adj: &[Vec<usize>]) -> MatchResult {
    let n_left = g.n_left();
    let n_right = g.n_right();
    let edges = g.edges();

    // match_* use usize::MAX as "unmatched" sentinel internally.
    let mut match_left = vec![usize::MAX; n_left];
    let mut match_right = vec![usize::MAX; n_right];
    let mut dist = vec![INF; n_left];
    let mut queue = std::collections::VecDeque::with_capacity(n_left);
    let mut size = 0usize;

    loop {
        // BFS phase: layer unmatched left nodes.
        queue.clear();
        for l in 0..n_left {
            if match_left[l] == usize::MAX {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_augmenting = false;
        while let Some(l) = queue.pop_front() {
            for &ei in &adj[l] {
                let r = edges[ei].right;
                let l2 = match_right[r];
                if l2 == usize::MAX {
                    found_augmenting = true;
                } else if dist[l2] == INF {
                    dist[l2] = dist[l] + 1;
                    queue.push_back(l2);
                }
            }
        }
        if !found_augmenting {
            break;
        }

        // DFS phase: find vertex-disjoint shortest augmenting paths.
        fn dfs(
            l: usize,
            edges: &[crate::bipartite::Edge],
            adj: &[Vec<usize>],
            match_left: &mut [usize],
            match_right: &mut [usize],
            dist: &mut [u32],
        ) -> bool {
            for &ei in &adj[l] {
                let r = edges[ei].right;
                let l2 = match_right[r];
                if l2 == usize::MAX
                    || (dist[l2] == dist[l] + 1
                        && dfs(l2, edges, adj, match_left, match_right, dist))
                {
                    match_left[l] = r;
                    match_right[r] = l;
                    return true;
                }
            }
            dist[l] = INF;
            false
        }

        for l in 0..n_left {
            if match_left[l] == usize::MAX
                && dist[l] == 0
                && dfs(l, edges, adj, &mut match_left, &mut match_right, &mut dist)
            {
                size += 1;
            }
        }
    }

    MatchResult {
        size,
        match_left: match_left
            .into_iter()
            .map(|m| if m == usize::MAX { None } else { Some(m) })
            .collect(),
        match_right: match_right
            .into_iter()
            .map(|m| if m == usize::MAX { None } else { Some(m) })
            .collect(),
    }
}

/// Exhaustive maximum matching by backtracking; exponential, test oracle
/// only. Exposed so downstream crates' tests can reuse it.
pub fn brute_force_max_matching(g: &BipartiteGraph) -> usize {
    fn go(g: &BipartiteGraph, l: usize, used_right: &mut Vec<bool>) -> usize {
        if l == g.n_left() {
            return 0;
        }
        // Option 1: leave l unmatched.
        let mut best = go(g, l + 1, used_right);
        // Option 2: match l to any free neighbour.
        for e in g.edges().iter().filter(|e| e.left == l) {
            if !used_right[e.right] {
                used_right[e.right] = true;
                best = best.max(1 + go(g, l + 1, used_right));
                used_right[e.right] = false;
            }
        }
        best
    }
    go(g, 0, &mut vec![false; g.n_right()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n_left: usize, n_right: usize, edges: &[(usize, usize)]) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(n_left, n_right);
        for &(l, r) in edges {
            g.add_edge(l, r, 1.0);
        }
        g
    }

    #[test]
    fn empty_graph() {
        let g = graph(3, 3, &[]);
        let m = maximum_matching(&g);
        assert_eq!(m.size, 0);
        assert!(!m.saturates_left());
    }

    #[test]
    fn perfect_matching_on_identity() {
        let g = graph(4, 4, &[(0, 0), (1, 1), (2, 2), (3, 3)]);
        let m = maximum_matching(&g);
        assert_eq!(m.size, 4);
        assert!(m.saturates_left());
        assert_eq!(m.pairs(), vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn augmenting_path_needed() {
        // Greedy l0->r0 would block l1; HK must augment.
        let g = graph(2, 2, &[(0, 0), (0, 1), (1, 0)]);
        let m = maximum_matching(&g);
        assert_eq!(m.size, 2);
        assert!(m.saturates_left());
    }

    #[test]
    fn unbalanced_sides() {
        let g = graph(2, 5, &[(0, 4), (1, 4), (1, 3)]);
        let m = maximum_matching(&g);
        assert_eq!(m.size, 2);
    }

    #[test]
    fn bottlenecked_structure() {
        // All left nodes fight over one right node.
        let g = graph(3, 1, &[(0, 0), (1, 0), (2, 0)]);
        let m = maximum_matching(&g);
        assert_eq!(m.size, 1);
    }

    type Case = (usize, usize, Vec<(usize, usize)>);

    #[test]
    fn matches_brute_force_on_fixed_cases() {
        let cases: Vec<Case> = vec![
            (3, 3, vec![(0, 0), (0, 1), (1, 1), (2, 1), (2, 2)]),
            (4, 3, vec![(0, 0), (1, 0), (2, 1), (3, 2), (3, 1)]),
            (
                5,
                5,
                vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 0), (4, 4)],
            ),
        ];
        for (nl, nr, edges) in cases {
            let g = graph(nl, nr, &edges);
            assert_eq!(maximum_matching(&g).size, brute_force_max_matching(&g));
        }
    }

    #[test]
    fn csr_variant_agrees_with_nested_adjacency() {
        let g = graph(4, 4, &[(0, 1), (1, 1), (1, 2), (2, 0), (3, 3), (3, 0)]);
        let adj = g.adjacency();
        let nested = maximum_matching_with_adjacency(&g, &adj);

        let mut adj_off = vec![0usize; g.n_left() + 1];
        let mut adj_edges = Vec::new();
        for (l, list) in adj.iter().enumerate() {
            adj_off[l + 1] = adj_off[l] + list.len();
            adj_edges.extend_from_slice(list);
        }
        let mut scratch = HopcroftKarpScratch::default();
        let size = maximum_matching_csr_into(&g, &adj_off, &adj_edges, &mut scratch);

        assert_eq!(size, nested.size);
        for l in 0..g.n_left() {
            let csr = (scratch.match_left[l] != usize::MAX).then_some(scratch.match_left[l]);
            assert_eq!(csr, nested.match_left[l]);
        }
        for r in 0..g.n_right() {
            let csr = (scratch.match_right[r] != usize::MAX).then_some(scratch.match_right[r]);
            assert_eq!(csr, nested.match_right[r]);
        }
    }

    #[test]
    fn matching_is_consistent() {
        let g = graph(4, 4, &[(0, 1), (1, 1), (1, 2), (2, 0), (3, 3), (3, 0)]);
        let m = maximum_matching(&g);
        for (l, r) in m.pairs() {
            assert_eq!(m.match_right[r], Some(l));
            // Every matched pair must be an actual edge.
            assert!(g.edges().iter().any(|e| e.left == l && e.right == r));
        }
    }
}
