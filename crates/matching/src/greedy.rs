//! Greedy robust-communication selection (the variant used in the paper's
//! experiments).
//!
//! Section 4.2: "We can use a greedy algorithm that gives priority to
//! internal communications and then greedily select the edges in the order
//! of non-decreasing weights. We retain the current edge if it satisfies to
//! the condition of proposition 4.3 given already taken decisions, i.e., if
//! it saturates a new left node and a new right node in the graph, and
//! otherwise we proceed to the next edge."

use crate::bipartite::BipartiteGraph;
use crate::Matching;

/// Greedily selects a left-perfect matching: `forced` (internal) pairs
/// first, then remaining edges in non-decreasing weight order, keeping an
/// edge iff both endpoints are still unsaturated.
///
/// Returns `None` if the greedy pass fails to saturate every left node
/// (cannot happen on MC-FTSA's graphs, where every non-internal left node
/// is connected to *all* right nodes, but callers with sparser graphs must
/// handle it).
///
/// ```
/// use matching::{BipartiteGraph, greedy_matching};
/// let mut g = BipartiteGraph::new(2, 2);
/// g.add_edge(0, 0, 5.0);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 0, 2.0);
/// g.add_edge(1, 1, 3.0);
/// let m = greedy_matching(&g, &[]).unwrap();
/// // Greedy takes 0-1 (w=1), then 1-0 (w=2).
/// assert_eq!(m.bottleneck, 2.0);
/// ```
pub fn greedy_matching(g: &BipartiteGraph, forced: &[(usize, usize)]) -> Option<Matching> {
    let mut scratch = GreedyScratch::default();
    let mut pairs = Vec::with_capacity(g.n_left());
    if greedy_matching_into(g, forced, &mut scratch, &mut pairs) {
        Some(Matching::from_pairs(g, pairs))
    } else {
        None
    }
}

/// Reusable buffers for [`greedy_matching_into`].
#[derive(Debug, Clone, Default)]
pub struct GreedyScratch {
    left_used: Vec<bool>,
    right_used: Vec<bool>,
    order: Vec<u32>,
}

/// [`greedy_matching`] writing the selected pairs into a caller-provided
/// buffer — the zero-allocation form used by the scheduler's matched
/// placement. `pairs` is cleared first and, on success (`true`), holds
/// the forced pairs followed by the greedy picks in non-decreasing
/// weight order — exactly the pair sequence [`greedy_matching`] records.
pub fn greedy_matching_into(
    g: &BipartiteGraph,
    forced: &[(usize, usize)],
    scratch: &mut GreedyScratch,
    pairs: &mut Vec<(usize, usize)>,
) -> bool {
    let left_used = &mut scratch.left_used;
    let right_used = &mut scratch.right_used;
    left_used.clear();
    left_used.resize(g.n_left(), false);
    right_used.clear();
    right_used.resize(g.n_right(), false);
    pairs.clear();

    for &(l, r) in forced {
        assert!(
            g.weight(l, r).is_some(),
            "forced pair ({l}, {r}) is not an edge"
        );
        assert!(
            !left_used[l] && !right_used[r],
            "forced pairs must be disjoint"
        );
        left_used[l] = true;
        right_used[r] = true;
        pairs.push((l, r));
    }

    // Order edge indices by (weight, index): the index tiebreak makes
    // the key total, so the allocation-free unstable sort produces
    // exactly the stable by-weight order (deterministic for ties).
    let order = &mut scratch.order;
    order.clear();
    order.extend(0..g.edges().len() as u32);
    order.sort_unstable_by(|&a, &b| {
        g.edges()[a as usize]
            .weight
            .total_cmp(&g.edges()[b as usize].weight)
            .then(a.cmp(&b))
    });

    for &ei in order.iter() {
        let e = g.edges()[ei as usize];
        if !left_used[e.left] && !right_used[e.right] {
            left_used[e.left] = true;
            right_used[e.right] = true;
            pairs.push((e.left, e.right));
            if pairs.len() == g.n_left() {
                break;
            }
        }
    }

    left_used.iter().all(|&u| u)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize, w: impl Fn(usize, usize) -> f64) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(n, n);
        for l in 0..n {
            for r in 0..n {
                g.add_edge(l, r, w(l, r));
            }
        }
        g
    }

    #[test]
    fn selects_cheapest_available() {
        let g = complete(3, |l, r| (l * 3 + r) as f64);
        let m = greedy_matching(&g, &[]).unwrap();
        assert!(m.is_left_perfect(3));
        // Greedy picks (0,0)=0, then (1,1)=4, then (2,2)=8.
        assert_eq!(m.pairs, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn forced_internal_first() {
        // The forced pair is the *worst* edge, yet must be selected.
        let g = complete(2, |l, r| if (l, r) == (0, 0) { 99.0 } else { 1.0 });
        let m = greedy_matching(&g, &[(0, 0)]).unwrap();
        assert!(m.pairs.contains(&(0, 0)));
        assert_eq!(m.pairs.len(), 2);
        assert_eq!(m.bottleneck, 99.0);
    }

    #[test]
    fn greedy_always_succeeds_on_complete_graphs() {
        for n in 1..6 {
            let g = complete(n, |l, r| ((l * 7 + r * 13) % 10) as f64);
            let m = greedy_matching(&g, &[]).unwrap();
            assert!(m.is_left_perfect(n));
        }
    }

    #[test]
    fn sparse_failure_returns_none() {
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0, 1.0);
        g.add_edge(1, 0, 2.0); // both left nodes only reach right 0
        assert!(greedy_matching(&g, &[]).is_none());
    }

    #[test]
    fn greedy_can_be_suboptimal_but_valid() {
        // Classic greedy trap: taking the lightest edge first forces a
        // heavy completion. Bottleneck-optimal would pick {0-0, 1-1} = 5.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0, 4.0);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 0, 9.0);
        g.add_edge(1, 1, 5.0);
        let m = greedy_matching(&g, &[]).unwrap();
        assert!(m.is_left_perfect(2));
        assert_eq!(m.pairs, vec![(0, 1), (1, 0)]);
        assert_eq!(m.bottleneck, 9.0);
        let opt = crate::bottleneck_matching(&g, &[]).unwrap();
        assert_eq!(opt.bottleneck, 5.0);
        assert!(opt.bottleneck <= m.bottleneck);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let g = complete(4, |_, _| 1.0);
        let a = greedy_matching(&g, &[]).unwrap();
        let b = greedy_matching(&g, &[]).unwrap();
        assert_eq!(a, b);
    }
}
