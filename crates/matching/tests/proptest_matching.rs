//! Property-based tests for the matching crate: Hopcroft–Karp against a
//! brute-force oracle, bottleneck optimality, greedy validity, and the
//! robustness condition of Proposition 4.3.

use matching::{
    bottleneck_matching, greedy_matching, hopcroft_karp::brute_force_max_matching,
    maximum_matching, BipartiteGraph,
};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = BipartiteGraph> {
    (1..=max_n, 1..=max_n).prop_flat_map(|(nl, nr)| {
        proptest::collection::vec((0..nl, 0..nr, 0.0f64..100.0), 0..nl * nr).prop_map(
            move |edges| {
                let mut g = BipartiteGraph::new(nl, nr);
                for (l, r, w) in edges {
                    g.add_edge(l, r, w);
                }
                g
            },
        )
    })
}

/// Complete bipartite n×n graphs — the shape MC-FTSA produces (every
/// non-internal sender can reach every receiver).
fn arb_complete(max_n: usize) -> impl Strategy<Value = BipartiteGraph> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(0.0f64..100.0, n * n).prop_map(move |ws| {
            let mut g = BipartiteGraph::new(n, n);
            for l in 0..n {
                for r in 0..n {
                    g.add_edge(l, r, ws[l * n + r]);
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hopcroft_karp_is_maximum(g in arb_graph(6)) {
        let m = maximum_matching(&g);
        prop_assert_eq!(m.size, brute_force_max_matching(&g));
        // Consistency of the two match arrays.
        for (l, r) in m.pairs() {
            prop_assert_eq!(m.match_right[r], Some(l));
        }
    }

    #[test]
    fn bottleneck_is_optimal_on_complete(g in arb_complete(5)) {
        let n = g.n_left();
        let m = bottleneck_matching(&g, &[]).unwrap();
        prop_assert!(m.is_left_perfect(n));
        // Every permutation has bottleneck >= ours.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut all_ge = true;
        permute(&mut perm, 0, &mut |p| {
            let b = p
                .iter()
                .enumerate()
                .map(|(l, &r)| g.weight(l, r).unwrap())
                .fold(f64::NEG_INFINITY, f64::max);
            if b < m.bottleneck - 1e-12 {
                all_ge = false;
            }
        });
        prop_assert!(all_ge, "found a permutation with smaller bottleneck");
    }

    #[test]
    fn greedy_valid_and_bounded_by_bottleneck(g in arb_complete(6)) {
        let n = g.n_left();
        let greedy = greedy_matching(&g, &[]).unwrap();
        let opt = bottleneck_matching(&g, &[]).unwrap();
        prop_assert!(greedy.is_left_perfect(n));
        prop_assert!(opt.bottleneck <= greedy.bottleneck + 1e-12);
    }

    #[test]
    fn forced_pairs_always_selected(
        g in arb_complete(5),
        k in 0usize..3,
    ) {
        let n = g.n_left();
        let forced: Vec<(usize, usize)> = (0..k.min(n)).map(|i| (i, i)).collect();
        for m in [greedy_matching(&g, &forced), bottleneck_matching(&g, &forced)] {
            let m = m.unwrap();
            for f in &forced {
                prop_assert!(m.pairs.contains(f));
            }
            prop_assert!(m.is_left_perfect(n));
        }
    }

    /// Proposition 4.3: with forced internal edges for shared processors, a
    /// left-perfect matching survives any ε failures — i.e. for every
    /// subset of ε "failed" left/right positions (processors), some
    /// selected pair has both endpoints alive OR a forced internal pair's
    /// processor is alive. We verify the communication-connectivity core:
    /// after removing any ε processors, at least one selected pair connects
    /// two live processors when senders/receivers overlap per MC-FTSA
    /// construction.
    #[test]
    fn robust_selection_survives_failures(seed in 0u64..500) {
        // Build an MC-FTSA-shaped instance: eps+1 senders, eps+1 receivers,
        // drawn from a pool of processors with a possible overlap.
        let eps = 2usize;
        let k = (seed % 3) as usize; // overlap size 0..=2
        let n = eps + 1;
        // Processor ids: senders 0..n, receivers shifted so the first k
        // coincide with senders.
        let sender_procs: Vec<usize> = (0..n).collect();
        let receiver_procs: Vec<usize> = (0..n).map(|i| if i < k { i } else { n + i }).collect();
        let mut g = BipartiteGraph::new(n, n);
        let mut forced = Vec::new();
        for (li, &sp) in sender_procs.iter().enumerate() {
            if let Some(ri) = receiver_procs.iter().position(|&rp| rp == sp) {
                // Shared processor: single forced internal edge.
                g.add_edge(li, ri, (seed % 7) as f64);
                forced.push((li, ri));
            } else {
                for ri in 0..n {
                    g.add_edge(li, ri, ((seed * 31 + (li * n + ri) as u64) % 50) as f64);
                }
            }
        }
        let m = greedy_matching(&g, &forced).unwrap();
        prop_assert!(m.is_left_perfect(n));

        // Enumerate all eps-subsets of involved processors as failures and
        // check at least one selected (sender, receiver) pair is fully
        // alive — the Proposition 4.3 guarantee.
        let mut procs: Vec<usize> = sender_procs.iter().chain(&receiver_procs).copied().collect();
        procs.sort_unstable();
        procs.dedup();
        for_each_subset(&procs, eps, &mut |failed| {
            let alive = |p: usize| !failed.contains(&p);
            let ok = m.pairs.iter().any(|&(l, r)| {
                alive(sender_procs[l]) && alive(receiver_procs[r])
            });
            assert!(ok, "no surviving communication for failures {failed:?}");
        });
    }
}

fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == v.len() {
        f(v);
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permute(v, k + 1, f);
        v.swap(k, i);
    }
}

fn for_each_subset(items: &[usize], size: usize, f: &mut impl FnMut(&[usize])) {
    fn go(
        items: &[usize],
        size: usize,
        start: usize,
        cur: &mut Vec<usize>,
        f: &mut impl FnMut(&[usize]),
    ) {
        if cur.len() == size {
            f(cur);
            return;
        }
        for i in start..items.len() {
            cur.push(items[i]);
            go(items, size, i + 1, cur, f);
            cur.pop();
        }
    }
    go(items, size, 0, &mut Vec::new(), f);
}
