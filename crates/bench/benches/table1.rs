//! Table 1 bench: scheduling-algorithm running time vs task count
//! (50 processors, ε = 5, like the paper). The claim under test is the
//! scaling *shape*: FTSA/MC-FTSA near-linear, FTBAR super-quadratic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftsched_bench::bench_instance;
use ftsched_core::{ftbar::ftbar, ftsa::ftsa, mc_ftsa};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);

    for &tasks in &[100usize, 500, 1000] {
        let inst = bench_instance(tasks, 50, 0x7AB1E1);
        group.bench_with_input(BenchmarkId::new("FTSA", tasks), &inst, |b, inst| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                ftsa(inst, 5, &mut rng).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("MC-FTSA", tasks), &inst, |b, inst| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                mc_ftsa::mc_ftsa(inst, 5, mc_ftsa::Selector::Greedy, &mut rng).unwrap()
            })
        });
        // FTBAR's cubic growth makes the larger paper sizes too slow for
        // a statistics-grade bench; the experiments binary (`table1
        // --full`) measures them once.
        if tasks <= 500 {
            group.bench_with_input(BenchmarkId::new("FTBAR", tasks), &inst, |b, inst| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    ftbar(inst, 5, &mut rng).unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
