//! Component ablations for the design choices called out in DESIGN.md:
//!
//! * the AVL-backed priority list vs a `BTreeMap` oracle (the paper
//!   prescribes an AVL for the free list `α`);
//! * greedy vs bottleneck-optimal communication selection in MC-FTSA;
//! * FTBAR with and without the minimize-start-time duplication pass;
//! * event-queue simulation vs the analytic replay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftcollections::PriorityList;
use ftsched_bench::bench_instance;
use ftsched_core::{ftbar::ftbar_with_options, mc_ftsa, schedule, Algorithm};
use platform::FailureScenario;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simulator::{replay::replay, simulate};
use std::collections::BTreeMap;

fn bench_priority_list(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/priority-list");
    let n = 10_000usize;
    let mut rng = StdRng::seed_from_u64(1);
    let items: Vec<(f64, u64)> = (0..n)
        .map(|_| (rng.gen::<f64>() * 1e6, rng.gen()))
        .collect();

    group.bench_function("avl-priority-list", |b| {
        b.iter(|| {
            let mut l = PriorityList::new(n);
            for (i, &(p, tb)) in items.iter().enumerate() {
                l.insert(i, p, tb);
            }
            let mut acc = 0usize;
            while let Some(x) = l.pop() {
                acc ^= x;
            }
            acc
        })
    });
    group.bench_function("btreemap-baseline", |b| {
        b.iter(|| {
            let mut m: BTreeMap<(u64, u64), usize> = BTreeMap::new();
            for (i, &(p, tb)) in items.iter().enumerate() {
                m.insert((p.to_bits(), tb), i);
            }
            let mut acc = 0usize;
            while let Some((&k, _)) = m.iter().next_back() {
                acc ^= m.remove(&k).unwrap();
            }
            acc
        })
    });
    group.finish();
}

fn bench_mc_selectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/mc-selector");
    group.sample_size(10);
    let inst = bench_instance(125, 20, 42);
    for (name, sel) in [
        ("greedy", mc_ftsa::Selector::Greedy),
        ("bottleneck", mc_ftsa::Selector::Bottleneck),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 3), &inst, |b, inst| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                mc_ftsa::mc_ftsa(inst, 3, sel, &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_ftbar_duplication(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/ftbar-mst");
    group.sample_size(10);
    let inst = bench_instance(125, 20, 43);
    for (name, mst) in [("with-duplication", true), ("without-duplication", false)] {
        group.bench_with_input(BenchmarkId::new(name, 1), &inst, |b, inst| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                ftbar_with_options(inst, 1, mst, &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_ftsa_priority(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/ftsa-priority");
    group.sample_size(10);
    let inst = bench_instance(125, 20, 45);
    for (name, policy) in [
        (
            "criticalness",
            ftsched_core::ftsa::PriorityPolicy::Criticalness,
        ),
        (
            "bottom-level",
            ftsched_core::ftsa::PriorityPolicy::BottomLevelOnly,
        ),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 2), &inst, |b, inst| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                ftsched_core::ftsa::ftsa_with_policy(inst, 2, policy, &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_contention_models(c: &mut Criterion) {
    use simulator::contention::{simulate_contention, PortModel};
    let mut group = c.benchmark_group("ablation/contention");
    group.sample_size(10);
    let inst = bench_instance(125, 20, 46);
    let sched = schedule(&inst, 2, Algorithm::Ftsa, &mut StdRng::seed_from_u64(1)).unwrap();
    for (name, model) in [
        ("unbounded", PortModel::Unbounded),
        ("one-port", PortModel::OnePort),
        ("multi-port-4", PortModel::BoundedMultiPort(4)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| simulate_contention(&inst, &sched, &FailureScenario::none(), model))
        });
    }
    group.finish();
}

fn bench_sim_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/simulator");
    group.sample_size(10);
    let inst = bench_instance(125, 20, 44);
    let sched = schedule(&inst, 2, Algorithm::Ftsa, &mut StdRng::seed_from_u64(1)).unwrap();
    let scen = FailureScenario::uniform(&mut StdRng::seed_from_u64(2), 20, 2);
    group.bench_function("event-queue", |b| b.iter(|| simulate(&inst, &sched, &scen)));
    group.bench_function("analytic-replay", |b| {
        b.iter(|| replay(&inst, &sched, &scen))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_priority_list,
    bench_mc_selectors,
    bench_ftbar_duplication,
    bench_ftsa_priority,
    bench_contention_models,
    bench_sim_engines
);
criterion_main!(benches);
