//! Parallel-harness bench: the figure-sweep pipeline through the rayon
//! shim at 1, 2 and 4 workers, plus the raw `parallel_map` dispatch
//! overhead. The 1- vs 4-thread pair is the wall-clock speedup
//! measurement behind the scaling claim (also asserted, where cores
//! exist, by `tests/parallel_determinism.rs`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use experiments::figures::{run_figure_with_threads, FigureConfig};
use experiments::parallel::parallel_map;

fn bench_figure_sweep_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_sweep");
    group.sample_size(5);
    let cfg = FigureConfig {
        granularities: vec![0.4, 1.2],
        repetitions: 4,
        ..FigureConfig::comparison("bench", 1, 4)
    };
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("threads/{threads}"), |b| {
            b.iter(|| run_figure_with_threads(black_box(&cfg), threads))
        });
    }
    group.finish();
}

fn bench_parallel_map_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_map");
    group.sample_size(20);
    // Cheap cells: measures dispatch + recombination cost, not work.
    for threads in [1usize, 4] {
        group.bench_function(format!("dispatch_1k_cells/{threads}"), |b| {
            b.iter(|| parallel_map(1000, threads, |i| black_box(i as u64).wrapping_mul(0x9E37)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_figure_sweep_threads,
    bench_parallel_map_overhead
);
criterion_main!(benches);
