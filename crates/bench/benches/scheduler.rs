//! Scheduler hot-path bench: `schedule()` throughput on fig1-style
//! instances (20 processors, granularity 1.0, ε = 1) at v ∈ {100, 500,
//! 1000} tasks, one series per algorithm, plus the ε = 5 stress shape
//! Table 1 uses. This is the target tracked by `BENCH_scheduler.json`
//! (see `crates/bench/BENCH_scheduler.json`): later PRs compare their
//! medians against that baseline to keep the placement loop fast.
//!
//! Since the flat-CSR / zero-allocation PR the target also tracks:
//!
//! * `scheduler/large` — the production-scale regime (v = 2000 … 100000)
//!   the ROADMAP targets, two orders of magnitude past the paper's
//!   experiments; since the incremental-pressure PR the series includes
//!   FTBAR, whose σ sweep is no longer quadratic-with-full-rescans;
//! * `scheduler/reuse` — steady-state `schedule_into` over one
//!   `ScheduleWorkspace` (the experiment-grid / sweep workload, 0 heap
//!   allocations per run);
//! * `scheduler/pressure-ref` — the *exhaustive* reference pressure
//!   sweep (`run_into_reference_pressure`) on the fig1 v = 1000 shape:
//!   the before side of the incremental-pressure speedup, kept
//!   measurable so the gap stays visible;
//! * `scheduler/fold` — the arrival-row folds of `ftcollections::fold`
//!   against their scalar references, at the scheduler's row width
//!   (m = 20) and at a vectorization-friendly width (m = 1024);
//! * `scheduler/heap` — the tombstone/epoch heap under the half-stale
//!   churn pattern heap-driven pressure selection produces;
//! * `scheduler/locality` — the pred-major arrival arena under widening
//!   σ-sets (ε = 1 vs 3 at v = 10000): row-width scaling, isolated from
//!   the task-count scaling `large` tracks;
//! * `scheduler/montecarlo` — the crash-campaign hot path
//!   (`simulate_replication_outcomes_into`, flat `CrashWorkspace`
//!   state, allocation-free after the first replication).
//!
//! Run a quick correctness pass (1 sample per benchmark) with
//! `cargo bench --bench scheduler -- --test`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftsched_bench::bench_instance;
use ftsched_core::{schedule, schedule_into, Algorithm, ScheduleWorkspace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simulator::crash::{simulate_replication_outcomes_into, CrashWorkspace, ReplicationOutcome};

/// The fig1 sweep sizes tracked by the baseline JSON.
const SIZES: [usize; 3] = [100, 500, 1000];

/// The production-scale sweep sizes. Since the incremental-pressure
/// engine FTBAR joins FTSA here: its σ sweep re-evaluates only
/// invalidated tasks, so the former 21× fig1 gap no longer explodes
/// with v — and since the heap-driven selection PR the sweep itself is
/// gone (lazy max-heap + family migration, ~3 evaluations per step).
/// The matched-communication algorithms (MC-FTSA, MC-FTBAR) run to
/// 20000: the greedy per-edge matcher is their own cost centre, and
/// MC-FTBAR's series records how much of the pressure-selection speedup
/// survives matched comm.
const LARGE_SIZES: [usize; 6] = [2000, 5000, 10000, 20000, 50000, 100000];

/// Matched-communication cap inside `scheduler/large`: above this the
/// greedy matcher dominates wall-clock and the CI smoke pass (one
/// sample per benchmark) would stop being a smoke pass.
const MATCHED_COMM_CAP: usize = 20000;

fn bench_schedule_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/fig1");
    group.sample_size(10);
    for v in SIZES {
        let inst = bench_instance(v, 20, 0xF161 + v as u64);
        for alg in [Algorithm::Ftsa, Algorithm::McFtsaGreedy, Algorithm::Ftbar] {
            group.bench_with_input(BenchmarkId::new(alg.name(), v), &inst, |b, inst| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(7);
                    schedule(inst, 1, alg, &mut rng).unwrap()
                })
            });
        }
    }
    group.finish();
}

fn bench_schedule_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/large");
    group.sample_size(10);
    for v in LARGE_SIZES {
        let inst = bench_instance(v, 20, 0x1A26E + v as u64);
        for alg in [
            Algorithm::Ftsa,
            Algorithm::McFtsaGreedy,
            Algorithm::Ftbar,
            Algorithm::FtbarMatched,
        ] {
            let matched_comm = matches!(alg, Algorithm::McFtsaGreedy | Algorithm::FtbarMatched);
            if matched_comm && v > MATCHED_COMM_CAP {
                continue; // matcher-bound; FTSA + FTBAR cover 50k+
            }
            group.bench_with_input(BenchmarkId::new(alg.name(), v), &inst, |b, inst| {
                let mut ws = ScheduleWorkspace::new();
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(7);
                    schedule_into(inst, 1, alg, &mut rng, &mut ws)
                        .unwrap()
                        .latency_lower_bound()
                })
            });
        }
    }
    group.finish();
}

fn bench_pressure_reference(c: &mut Criterion) {
    // The exhaustive reference sweep on the fig1 v = 1000 shape — the
    // "before" of the incremental-pressure engine, and the oracle the
    // equivalence suite replays. Tracking it keeps the speedup honest:
    // the production FTBAR series must stay well under this.
    let mut group = c.benchmark_group("scheduler/pressure-ref");
    group.sample_size(10);
    let inst = bench_instance(1000, 20, 0xF161 + 1000);
    let sched = Algorithm::Ftbar.scheduler();
    group.bench_with_input(BenchmarkId::new("FTBAR-naive", 1000), &inst, |b, inst| {
        let mut ws = ScheduleWorkspace::new();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            sched
                .run_into_reference_pressure(inst, 1, &mut rng, &mut ws)
                .unwrap()
                .latency_lower_bound()
        })
    });
    group.finish();
}

fn bench_folds(c: &mut Criterion) {
    // The elementwise folds behind every arrival-cache read and write,
    // against their scalar references — at the scheduler's row width
    // (m = 20) and at a width where vectorization dominates. The max
    // fold's production form is 8-lane chunked (it wins); min-saxpy's is
    // the plain loop (manual chunking measured ~2× slower — see the
    // fold module docs), so its two series watch for codegen drift.
    use ftcollections::fold::{
        max_in_place, max_in_place_scalar, min_saxpy_in_place, min_saxpy_in_place_scalar,
    };
    let mut group = c.benchmark_group("scheduler/fold");
    group.sample_size(10);
    for n in [20usize, 1024] {
        let src: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 2.0).collect();
        let init: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos() + 2.0).collect();
        // Each sample folds 4096 rows into one accumulator, mirroring
        // the scheduler's many-rows-into-one access pattern.
        const ROWS: usize = 4096;
        group.bench_with_input(BenchmarkId::new("max-chunked", n), &n, |b, _| {
            let mut dst = init.clone();
            b.iter(|| {
                for _ in 0..ROWS {
                    max_in_place(&mut dst, &src);
                }
                dst[0]
            })
        });
        group.bench_with_input(BenchmarkId::new("max-scalar", n), &n, |b, _| {
            let mut dst = init.clone();
            b.iter(|| {
                for _ in 0..ROWS {
                    max_in_place_scalar(&mut dst, &src);
                }
                dst[0]
            })
        });
        group.bench_with_input(BenchmarkId::new("min-saxpy", n), &n, |b, _| {
            let mut dst = init.clone();
            b.iter(|| {
                for _ in 0..ROWS {
                    min_saxpy_in_place(&mut dst, 0.5, 1.0 + 1e-12, &src);
                }
                dst[0]
            })
        });
        group.bench_with_input(BenchmarkId::new("min-saxpy-scalar", n), &n, |b, _| {
            let mut dst = init.clone();
            b.iter(|| {
                for _ in 0..ROWS {
                    min_saxpy_in_place_scalar(&mut dst, 0.5, 1.0 + 1e-12, &src);
                }
                dst[0]
            })
        });
    }
    group.finish();
}

fn bench_epoch_heap(c: &mut Criterion) {
    // The tombstone/epoch heap under the access pattern pressure
    // selection actually produces: a push-heavy fill, then a pop phase
    // where half the entries have been invalidated by epoch bumps (a
    // placement bumps every rival it re-evaluates). Lazy deletion means
    // the stale half is paid for at pop time — this series watches that
    // cost at the scheduler's working-set size and at 64× it.
    use ftcollections::{EpochHeap, OrdF64};
    let mut group = c.benchmark_group("scheduler/heap");
    group.sample_size(10);
    for n in [1024usize, 65536] {
        group.bench_with_input(BenchmarkId::new("churn-half-stale", n), &n, |b, &n| {
            let mut heap: EpochHeap<OrdF64> = EpochHeap::new();
            let mut epochs = vec![0u32; n];
            b.iter(|| {
                heap.clear();
                for e in epochs.iter_mut() {
                    *e = 0;
                }
                for i in 0..n {
                    // Deterministic shuffled keys (Weyl sequence).
                    let key = ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64;
                    heap.push(i as u32, 0, OrdF64::new(key));
                }
                // Invalidate every other entry, then re-push it with a
                // new key at the bumped epoch — the rival cycle.
                for i in (0..n).step_by(2) {
                    epochs[i] = 1;
                    heap.push(i as u32, 1, OrdF64::new(i as f64));
                }
                let mut live = 0usize;
                while heap.pop(&epochs).is_some() {
                    live += 1;
                }
                live
            })
        });
    }
    group.finish();
}

fn bench_arena_locality(c: &mut Criterion) {
    // The cache-resident arrival arena under widening σ-sets: raising ε
    // multiplies the replicas folded per predecessor row, so this series
    // isolates how the pred-major CSR packing scales with row width on
    // a fixed 10k-task shape (the `large` series varies v instead).
    let mut group = c.benchmark_group("scheduler/locality");
    group.sample_size(10);
    let inst = bench_instance(10_000, 20, 0x1A26E + 10_000);
    for eps in [1usize, 3] {
        group.bench_with_input(
            BenchmarkId::new(format!("FTBAR-eps{eps}"), 10_000),
            &inst,
            |b, inst| {
                let mut ws = ScheduleWorkspace::new();
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(7);
                    schedule_into(inst, eps, Algorithm::Ftbar, &mut rng, &mut ws)
                        .unwrap()
                        .latency_lower_bound()
                })
            },
        );
    }
    group.finish();
}

fn bench_schedule_reuse(c: &mut Criterion) {
    // The experiment-grid workload: repeated scheduling of one instance
    // shape through a warm workspace — the zero-allocation steady state.
    let mut group = c.benchmark_group("scheduler/reuse");
    group.sample_size(10);
    let inst = bench_instance(1000, 20, 0xF161 + 1000);
    for alg in [Algorithm::Ftsa, Algorithm::McFtsaGreedy, Algorithm::Ftbar] {
        group.bench_with_input(BenchmarkId::new(alg.name(), 1000), &inst, |b, inst| {
            let mut ws = ScheduleWorkspace::new();
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                schedule_into(inst, 1, alg, &mut rng, &mut ws)
                    .unwrap()
                    .latency_lower_bound()
            })
        });
    }
    group.finish();
}

fn bench_schedule_high_replication(c: &mut Criterion) {
    // Table 1's shape: ε = 5 on 50 processors — the regime where the
    // per-(task, proc) arrival caches pay off most (6 replicas/pred).
    let mut group = c.benchmark_group("scheduler/eps5");
    group.sample_size(10);
    let inst = bench_instance(1000, 50, 0x7AB1E);
    for alg in [Algorithm::Ftsa, Algorithm::McFtsaGreedy] {
        group.bench_with_input(BenchmarkId::new(alg.name(), 1000), &inst, |b, inst| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                schedule(inst, 5, alg, &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_monte_carlo_replications(c: &mut Criterion) {
    // The Monte-Carlo crash-campaign hot path: one warm CrashWorkspace
    // drives every replication (zero allocation after the first).
    let mut group = c.benchmark_group("scheduler/montecarlo");
    group.sample_size(10);
    for (v, reps) in [(500usize, 200usize), (1000, 100)] {
        let inst = bench_instance(v, 20, 0xF161 + v as u64);
        let sched = {
            let mut rng = StdRng::seed_from_u64(7);
            schedule(&inst, 2, Algorithm::Ftsa, &mut rng).unwrap()
        };
        group.bench_with_input(
            BenchmarkId::new(format!("FTSA-reps{reps}"), v),
            &(inst, sched),
            |b, (inst, sched)| {
                let mut ws = CrashWorkspace::new();
                let mut out: Vec<ReplicationOutcome> = Vec::new();
                b.iter(|| {
                    simulate_replication_outcomes_into(
                        inst, sched, 2, reps, 0xCAFE, &mut out, &mut ws,
                    );
                    out.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schedule_fig1,
    bench_schedule_large,
    bench_pressure_reference,
    bench_folds,
    bench_epoch_heap,
    bench_arena_locality,
    bench_schedule_reuse,
    bench_schedule_high_replication,
    bench_monte_carlo_replications
);
criterion_main!(benches);
