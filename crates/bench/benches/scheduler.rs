//! Scheduler hot-path bench: `schedule()` throughput on fig1-style
//! instances (20 processors, granularity 1.0, ε = 1) at v ∈ {100, 500,
//! 1000} tasks, one series per algorithm, plus the ε = 5 stress shape
//! Table 1 uses. This is the target tracked by `BENCH_scheduler.json`
//! (see `crates/bench/BENCH_scheduler.json`): later PRs compare their
//! medians against that baseline to keep the placement loop fast.
//!
//! Run a quick correctness pass (1 sample per benchmark) with
//! `cargo bench --bench scheduler -- --test`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftsched_bench::bench_instance;
use ftsched_core::{schedule, Algorithm};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The fig1 sweep sizes tracked by the baseline JSON.
const SIZES: [usize; 3] = [100, 500, 1000];

fn bench_schedule_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/fig1");
    group.sample_size(10);
    for v in SIZES {
        let inst = bench_instance(v, 20, 0xF161 + v as u64);
        for alg in [Algorithm::Ftsa, Algorithm::McFtsaGreedy, Algorithm::Ftbar] {
            group.bench_with_input(BenchmarkId::new(alg.name(), v), &inst, |b, inst| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(7);
                    schedule(inst, 1, alg, &mut rng).unwrap()
                })
            });
        }
    }
    group.finish();
}

fn bench_schedule_high_replication(c: &mut Criterion) {
    // Table 1's shape: ε = 5 on 50 processors — the regime where the
    // per-(task, proc) arrival caches pay off most (6 replicas/pred).
    let mut group = c.benchmark_group("scheduler/eps5");
    group.sample_size(10);
    let inst = bench_instance(1000, 50, 0x7AB1E);
    for alg in [Algorithm::Ftsa, Algorithm::McFtsaGreedy] {
        group.bench_with_input(BenchmarkId::new(alg.name(), 1000), &inst, |b, inst| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                schedule(inst, 5, alg, &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schedule_fig1,
    bench_schedule_high_replication
);
criterion_main!(benches);
