//! Campaign-engine bench: the declarative scenario-grid executor end to
//! end (enumeration → per-worker-state cells → streaming aggregation)
//! at 1 and 4 workers, plus the per-cell evaluation hot path on a warm
//! `CellContext` — the number that the zero-allocation workspace
//! threading is meant to keep flat. The `online` series covers the
//! arrival-axis path: a full streaming preset end to end and the
//! stream-cell steady state (occupancy-floored scheduling + crash
//! replay per arrival on warm workspaces).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use experiments::campaign::{
    evaluate_cell_into, evaluate_stream_cell_into, instance_for_cell, presets,
    run_campaign_with_threads, CellContext, CellCoord, CellPlan, SeriesKey,
};

fn bench_campaign_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(5);
    let spec = presets::ci_smoke(3);
    for threads in [1usize, 4] {
        group.bench_function(format!("ci_smoke/threads/{threads}"), |b| {
            b.iter(|| run_campaign_with_threads(black_box(&spec), threads).unwrap())
        });
    }
    let online = presets::online(2);
    for threads in [1usize, 4] {
        group.bench_function(format!("online/threads/{threads}"), |b| {
            b.iter(|| run_campaign_with_threads(black_box(&online), threads).unwrap())
        });
    }
    group.finish();
}

fn bench_stream_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_cell");
    group.sample_size(10);
    let spec = presets::online(1);
    let plan = CellPlan::new(&spec);
    let coord = CellCoord {
        workload: 0,
        platform: 0,
        eps: 0,
        rep: 0,
    };
    let mut ctx = CellContext::new();
    let mut out: Vec<(SeriesKey, f64)> = Vec::new();
    evaluate_stream_cell_into(&spec, &plan, &coord, &mut ctx, &mut out).unwrap();
    group.bench_function("online_stream_steady_state", |b| {
        b.iter(|| {
            evaluate_stream_cell_into(black_box(&spec), &plan, &coord, &mut ctx, &mut out).unwrap();
            out.len()
        })
    });
    group.finish();
}

fn bench_campaign_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_cell");
    group.sample_size(10);
    let spec = presets::preset("fig1", Some(1)).unwrap();
    let plan = CellPlan::new(&spec);
    let coord = CellCoord {
        workload: 0,
        platform: 4, // g = 1.0 in the paper sweep
        eps: 0,
        rep: 0,
    };
    let inst = instance_for_cell(&spec, &coord);
    let mut ctx = CellContext::new();
    let mut out: Vec<(SeriesKey, f64)> = Vec::new();
    // Warm the workspaces so the measured loop is the steady state.
    evaluate_cell_into(&spec, &plan, &coord, &inst, &mut ctx, &mut out).unwrap();
    group.bench_function("fig1_cell_steady_state", |b| {
        b.iter(|| {
            evaluate_cell_into(
                black_box(&spec),
                &plan,
                &coord,
                black_box(&inst),
                &mut ctx,
                &mut out,
            )
            .unwrap();
            out.len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_campaign_executor,
    bench_campaign_cell,
    bench_stream_cell
);
criterion_main!(benches);
