//! The self-contained *bundle* file: everything needed to re-simulate a
//! schedule (graph, platform, execution matrix, the schedule itself and
//! its ε).

use ftsched_core::Schedule;
use platform::{ExecutionMatrix, Instance, Platform};
use serde::{Deserialize, Serialize};
use taskgraph::Dag;

/// A serializable scheduling artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bundle {
    /// The task graph.
    pub dag: Dag,
    /// The platform (link delays).
    pub platform: Platform,
    /// The execution-time matrix.
    pub exec: ExecutionMatrix,
    /// The fault-tolerant schedule.
    pub schedule: Schedule,
    /// Which algorithm produced it (display name).
    pub algorithm: String,
}

impl Bundle {
    /// Reassembles the [`Instance`] (clones the parts).
    pub fn instance(&self) -> Instance {
        Instance::new(self.dag.clone(), self.platform.clone(), self.exec.clone())
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Deserializes from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<Bundle> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsched_core::{schedule, Algorithm};
    use platform::gen::{paper_instance, PaperInstanceConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bundle_round_trips() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = paper_instance(
            &mut rng,
            &PaperInstanceConfig {
                tasks_lo: 20,
                tasks_hi: 20,
                procs: 5,
                ..Default::default()
            },
        );
        let s = schedule(&inst, 1, Algorithm::Ftsa, &mut rng).unwrap();
        let b = Bundle {
            dag: inst.dag.clone(),
            platform: inst.platform.clone(),
            exec: inst.exec.clone(),
            schedule: s.clone(),
            algorithm: "FTSA".into(),
        };
        let json = b.to_json().unwrap();
        let back = Bundle::from_json(&json).unwrap();
        assert_eq!(back.schedule, s);
        assert_eq!(back.algorithm, "FTSA");
        // The reassembled instance still validates the schedule.
        ftsched_core::validate::validate(&back.instance(), &back.schedule).unwrap();
    }
}
