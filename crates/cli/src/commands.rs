//! Command implementations. Each returns the text to print on success.

use crate::args::Args;
use crate::bundle::Bundle;
use ftsched_core::{schedule as run_schedule, validate::validate, Algorithm};
use platform::gen::random_platform;
use platform::granularity::scale_to_granularity;
use platform::{ExecutionMatrix, FailureScenario, Instance, ProcId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simulator::simulate;
use simulator::trace::gantt;
use std::fmt::Write as _;
use taskgraph::generators::{
    erdos, fork_join, layered, ErdosConfig, ForkJoinConfig, LayeredConfig,
};
use taskgraph::workloads;
use taskgraph::Dag;

fn read_graph(path: &str) -> Result<Dag, String> {
    let s = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    taskgraph::io::from_json(&s).map_err(|e| format!("parsing {path}: {e}"))
}

/// `ftsched generate`
pub fn generate(args: &Args) -> Result<String, String> {
    let family = args.require("family")?;
    let seed: u64 = args.get_num("seed", 42)?;
    let tasks: usize = args.get_num("tasks", 120)?;
    let size: usize = args.get_num("size", 8)?;
    let mut rng = StdRng::seed_from_u64(seed);

    let dag = match family {
        "layered" => layered(&mut rng, &LayeredConfig::paper(tasks)),
        "erdos" => erdos(&mut rng, &ErdosConfig::sparse(tasks)),
        "forkjoin" => fork_join(&mut rng, &ForkJoinConfig::new(size, size)),
        "gauss" => workloads::gaussian_elimination(size.max(2), 10.0, 1.0),
        "fft" => workloads::fft(size.next_power_of_two().max(2), 10.0, 20.0),
        "stencil" => workloads::stencil_1d(size, size, 10.0, 15.0),
        "wavefront" => workloads::wavefront(size, size, 10.0, 15.0),
        "mapreduce" => workloads::map_reduce(size, size / 2 + 1, 20.0, 30.0, 10.0),
        other => return Err(format!("unknown graph family `{other}`")),
    };

    let out = args.require("out")?;
    let json = taskgraph::io::to_json(&dag).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
    let mut msg = format!(
        "wrote {out}: {} tasks, {} edges ({family})\n",
        dag.num_tasks(),
        dag.num_edges()
    );
    if let Some(dot) = args.get("dot") {
        std::fs::write(dot, taskgraph::io::to_dot(&dag))
            .map_err(|e| format!("writing {dot}: {e}"))?;
        let _ = writeln!(msg, "wrote {dot} (Graphviz)");
    }
    Ok(msg)
}

fn parse_algorithm(name: &str) -> Result<Algorithm, String> {
    match name {
        "ftsa" => Ok(Algorithm::Ftsa),
        "mc-ftsa" => Ok(Algorithm::McFtsaGreedy),
        "mc-ftsa-bn" => Ok(Algorithm::McFtsaBottleneck),
        "ftbar" => Ok(Algorithm::Ftbar),
        other => Err(format!("unknown algorithm `{other}`")),
    }
}

/// `ftsched schedule`
pub fn schedule_cmd(args: &Args) -> Result<String, String> {
    let dag = read_graph(args.require("graph")?)?;
    let procs: usize = args.require_num("procs")?;
    let epsilon: usize = args.require_num("epsilon")?;
    let seed: u64 = args.get_num("seed", 42)?;
    let algorithm = parse_algorithm(args.get("algorithm").unwrap_or("ftsa"))?;

    let mut rng = StdRng::seed_from_u64(seed);
    let platform = random_platform(&mut rng, procs, 0.5, 1.0);
    let mut exec = ExecutionMatrix::unrelated_with_procs(&dag, procs, &mut rng, 0.5);
    if let Some(g) = args.get("granularity") {
        let g: f64 = g.parse().map_err(|_| "bad --granularity")?;
        scale_to_granularity(&dag, &platform, &mut exec, g);
    }
    let inst = Instance::new(dag, platform, exec);

    let sched = run_schedule(&inst, epsilon, algorithm, &mut rng).map_err(|e| e.to_string())?;
    validate(&inst, &sched).map_err(|e| e.to_string())?;

    let bundle = Bundle {
        dag: inst.dag.clone(),
        platform: inst.platform.clone(),
        exec: inst.exec.clone(),
        schedule: sched,
        algorithm: algorithm.name().to_string(),
    };
    let out = args.require("out")?;
    std::fs::write(out, bundle.to_json().map_err(|e| e.to_string())?)
        .map_err(|e| format!("writing {out}: {e}"))?;

    let stats = ftsched_core::stats::schedule_stats(&inst, &bundle.schedule);
    Ok(format!(
        "{} schedule, ε = {epsilon}, {} processors\n{stats}\nwrote {out}\n",
        bundle.algorithm, procs,
    ))
}

/// `ftsched simulate`
pub fn simulate_cmd(args: &Args) -> Result<String, String> {
    let path = args.require("bundle")?;
    let s = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let bundle = Bundle::from_json(&s).map_err(|e| format!("parsing {path}: {e}"))?;
    let inst = bundle.instance();

    let scenario = if let Some(list) = args.get("fail") {
        let ids: Result<Vec<u32>, _> = list.split(',').map(str::parse).collect();
        let ids = ids.map_err(|_| "bad --fail list (expected e.g. 0,3,7)")?;
        for &p in &ids {
            if p as usize >= inst.num_procs() {
                return Err(format!("--fail: no processor P{p}"));
            }
        }
        FailureScenario::at_time_zero(ids.into_iter().map(ProcId))
    } else if let Some(k) = args.get("random-failures") {
        let k: usize = k.parse().map_err(|_| "bad --random-failures")?;
        let seed: u64 = args.get_num("seed", 42)?;
        FailureScenario::uniform(&mut StdRng::seed_from_u64(seed), inst.num_procs(), k)
    } else {
        FailureScenario::none()
    };

    let sim = simulate(&inst, &bundle.schedule, &scenario);
    let failed: Vec<String> = scenario.iter().map(|(p, _)| p.to_string()).collect();
    let mut out = format!(
        "scenario: {} failed [{}]\n",
        scenario.len(),
        failed.join(", ")
    );
    if sim.completed() {
        let _ = writeln!(
            out,
            "completed; achieved latency {:.3} (bounds: [{:.3}, {:.3}])",
            sim.latency,
            bundle.schedule.latency_lower_bound(),
            bundle.schedule.latency_upper_bound()
        );
    } else {
        let _ = writeln!(
            out,
            "FAILED: a task lost all replicas (scenario exceeds the design ε = {})",
            bundle.schedule.epsilon
        );
    }
    if args.has_flag("gantt") {
        let _ = write!(out, "\n{}", gantt(&inst, &bundle.schedule, &sim, 72));
    }
    Ok(out)
}

/// `ftsched info`
pub fn info(args: &Args) -> Result<String, String> {
    let dag = read_graph(args.require("graph")?)?;
    let st = taskgraph::metrics::stats(&dag);
    Ok(format!(
        "tasks: {}\nedges: {}\nentries: {}\nexits: {}\ndepth: {}\nwidth (level bound): {}\n\
         mean out-degree: {:.2}\ntotal work: {:.1}\ntotal volume: {:.1}\n\
         computation critical path: {:.1}\n",
        st.tasks,
        st.edges,
        st.entries,
        st.exits,
        st.depth,
        st.width_lb,
        st.mean_out_degree,
        st.total_work,
        st.total_volume,
        taskgraph::metrics::critical_path_length(&dag, 0.0),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>()).unwrap()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("ftsched_cli_{name}_{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn full_cli_round_trip() {
        let graph = tmp("graph.json");
        let bundle = tmp("bundle.json");

        let msg = generate(&argv(&format!("--family gauss --size 6 --out {graph}"))).unwrap();
        assert!(msg.contains("tasks"));

        let msg = schedule_cmd(&argv(&format!(
            "--graph {graph} --procs 6 --epsilon 2 --algorithm mc-ftsa --out {bundle}"
        )))
        .unwrap();
        assert!(msg.contains("latency (M*/M)"), "{msg}");
        assert!(msg.contains("utilization"));

        let msg = simulate_cmd(&argv(&format!("--bundle {bundle} --fail 0,1 --gantt"))).unwrap();
        assert!(msg.contains("completed"), "{msg}");
        assert!(msg.contains('#'));

        let msg = info(&argv(&format!("--graph {graph}"))).unwrap();
        assert!(msg.contains("critical path"));

        let _ = std::fs::remove_file(graph);
        let _ = std::fs::remove_file(bundle);
    }

    #[test]
    fn too_many_failures_reported() {
        let graph = tmp("g2.json");
        let bundle = tmp("b2.json");
        generate(&argv(&format!("--family fft --size 8 --out {graph}"))).unwrap();
        schedule_cmd(&argv(&format!(
            "--graph {graph} --procs 4 --epsilon 0 --out {bundle}"
        )))
        .unwrap();
        let msg = simulate_cmd(&argv(&format!("--bundle {bundle} --fail 0,1,2,3"))).unwrap();
        assert!(msg.contains("FAILED"));
        let _ = std::fs::remove_file(graph);
        let _ = std::fs::remove_file(bundle);
    }

    #[test]
    fn unknown_family_and_algorithm() {
        assert!(generate(&argv("--family nope --out /tmp/x.json")).is_err());
        assert!(parse_algorithm("nope").is_err());
        assert!(parse_algorithm("ftbar").is_ok());
    }
}
