//! Command implementations. Each returns the text to print on success.

use crate::args::Args;
use crate::bundle::Bundle;
use experiments::campaign::{presets, run_campaign_with_threads, CampaignSpec};
use experiments::figures::{run_figure_with_threads, FigureConfig};
use experiments::output::{
    campaign_to_table, figure_to_table, write_campaign_outputs, write_figure_csv,
};
use experiments::parallel::default_threads;
use experiments::serve::{ServeConfig, Server};
use experiments::table1::{format_table1, run_table1_with_threads, Table1Config};
use ftsched_core::{schedule as run_schedule, validate::validate, Algorithm};
use platform::gen::random_platform;
use platform::granularity::scale_to_granularity;
use platform::{ExecutionMatrix, FailureScenario, Instance, ProcId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simulator::reliability::survival_probability_monte_carlo_par;
use simulator::trace::gantt;
use simulator::{simulate, simulate_replications};
use std::fmt::Write as _;
use taskgraph::generators::{
    erdos, fork_join, layered, ErdosConfig, ForkJoinConfig, LayeredConfig,
};
use taskgraph::workloads;
use taskgraph::Dag;

fn read_graph(path: &str) -> Result<Dag, String> {
    let s = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    taskgraph::io::from_json(&s).map_err(|e| format!("parsing {path}: {e}"))
}

/// `ftsched generate`
pub fn generate(args: &Args) -> Result<String, String> {
    let family = args.require("family")?;
    let seed: u64 = args.get_num("seed", 42)?;
    let tasks: usize = args.get_num("tasks", 120)?;
    let size: usize = args.get_num("size", 8)?;
    let mut rng = StdRng::seed_from_u64(seed);

    let dag = match family {
        "layered" => layered(&mut rng, &LayeredConfig::paper(tasks)),
        "erdos" => erdos(&mut rng, &ErdosConfig::sparse(tasks)),
        "forkjoin" => fork_join(&mut rng, &ForkJoinConfig::new(size, size)),
        "gauss" => workloads::gaussian_elimination(size.max(2), 10.0, 1.0),
        "fft" => workloads::fft(size.next_power_of_two().max(2), 10.0, 20.0),
        "stencil" => workloads::stencil_1d(size, size, 10.0, 15.0),
        "wavefront" => workloads::wavefront(size, size, 10.0, 15.0),
        "mapreduce" => workloads::map_reduce(size, size / 2 + 1, 20.0, 30.0, 10.0),
        other => return Err(format!("unknown graph family `{other}`")),
    };

    let out = args.require("out")?;
    let json = taskgraph::io::to_json(&dag).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
    let mut msg = format!(
        "wrote {out}: {} tasks, {} edges ({family})\n",
        dag.num_tasks(),
        dag.num_edges()
    );
    if let Some(dot) = args.get("dot") {
        std::fs::write(dot, taskgraph::io::to_dot(&dag))
            .map_err(|e| format!("writing {dot}: {e}"))?;
        let _ = writeln!(msg, "wrote {dot} (Graphviz)");
    }
    Ok(msg)
}

fn parse_algorithm(name: &str) -> Result<Algorithm, String> {
    name.parse()
}

/// Parses a `--algorithms a,b,c` list (used by the experiment axes).
fn parse_algorithm_list(list: &str) -> Result<Vec<Algorithm>, String> {
    list.split(',').map(|s| parse_algorithm(s.trim())).collect()
}

/// `ftsched schedule`
pub fn schedule_cmd(args: &Args) -> Result<String, String> {
    let dag = read_graph(args.require("graph")?)?;
    let procs: usize = args.require_num("procs")?;
    let epsilon: usize = args.require_num("epsilon")?;
    let seed: u64 = args.get_num("seed", 42)?;
    let algorithm = parse_algorithm(args.get("algorithm").unwrap_or("ftsa"))?;

    let mut rng = StdRng::seed_from_u64(seed);
    let platform = random_platform(&mut rng, procs, 0.5, 1.0);
    let mut exec = ExecutionMatrix::unrelated_with_procs(&dag, procs, &mut rng, 0.5);
    if let Some(g) = args.get("granularity") {
        let g: f64 = g.parse().map_err(|_| "bad --granularity")?;
        scale_to_granularity(&dag, &platform, &mut exec, g);
    }
    let inst = Instance::new(dag, platform, exec);

    let sched = run_schedule(&inst, epsilon, algorithm, &mut rng).map_err(|e| e.to_string())?;
    validate(&inst, &sched).map_err(|e| e.to_string())?;

    let bundle = Bundle {
        dag: inst.dag.clone(),
        platform: inst.platform.clone(),
        exec: inst.exec.clone(),
        schedule: sched,
        algorithm: algorithm.name().to_string(),
    };
    let out = args.require("out")?;
    std::fs::write(out, bundle.to_json().map_err(|e| e.to_string())?)
        .map_err(|e| format!("writing {out}: {e}"))?;

    let stats = ftsched_core::stats::schedule_stats(&inst, &bundle.schedule);
    Ok(format!(
        "{} schedule, ε = {epsilon}, {} processors\n{stats}\nwrote {out}\n",
        bundle.algorithm, procs,
    ))
}

/// `ftsched simulate`
pub fn simulate_cmd(args: &Args) -> Result<String, String> {
    let path = args.require("bundle")?;
    let s = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let bundle = Bundle::from_json(&s).map_err(|e| format!("parsing {path}: {e}"))?;
    let inst = bundle.instance();

    // Monte-Carlo mode: many random scenarios through the parallel
    // replication campaign instead of one simulation. The single-run
    // scenario options would be silently meaningless here, so reject
    // them instead of ignoring them.
    if let Some(reps) = args.get("replications") {
        for conflicting in ["fail", "random-failures"] {
            if args.get(conflicting).is_some() {
                return Err(format!(
                    "--replications draws its own random scenarios; \
                     it cannot be combined with --{conflicting} (use --crashes K)"
                ));
            }
        }
        if args.has_flag("gantt") {
            return Err("--gantt applies to a single simulation, not --replications".into());
        }
        let reps: usize = reps.parse().map_err(|_| "bad --replications")?;
        if reps == 0 {
            return Err("--replications must be at least 1".into());
        }
        let crashes: usize = args.get_num("crashes", bundle.schedule.epsilon)?;
        let seed: u64 = args.get_num("seed", 42)?;
        let threads = threads_from(args)?;
        let sims = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .map_err(|e| e.to_string())?
            .install(|| simulate_replications(&inst, &bundle.schedule, crashes, reps, seed));
        let completed = sims.iter().filter(|s| s.completed()).count();
        let latencies: Vec<f64> = sims
            .iter()
            .filter(|s| s.completed())
            .map(|s| s.latency)
            .collect();
        let mut out = format!(
            "{reps} replications x {crashes} crash(es) on {threads} thread(s)\n\
             completed: {completed}/{reps}\n",
        );
        if !latencies.is_empty() {
            let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
            let min = latencies.iter().copied().fold(f64::INFINITY, f64::min);
            let max = latencies.iter().copied().fold(0.0f64, f64::max);
            let _ = writeln!(
                out,
                "latency over completed runs: mean {mean:.3}, min {min:.3}, max {max:.3}\n\
                 schedule bounds: [{:.3}, {:.3}]",
                bundle.schedule.latency_lower_bound(),
                bundle.schedule.latency_upper_bound()
            );
        }
        return Ok(out);
    }

    let scenario = if let Some(list) = args.get("fail") {
        let ids: Result<Vec<u32>, _> = list.split(',').map(str::parse).collect();
        let ids = ids.map_err(|_| "bad --fail list (expected e.g. 0,3,7)")?;
        for &p in &ids {
            if p as usize >= inst.num_procs() {
                return Err(format!("--fail: no processor P{p}"));
            }
        }
        FailureScenario::at_time_zero(ids.into_iter().map(ProcId))
    } else if let Some(k) = args.get("random-failures") {
        let k: usize = k.parse().map_err(|_| "bad --random-failures")?;
        let seed: u64 = args.get_num("seed", 42)?;
        FailureScenario::uniform(&mut StdRng::seed_from_u64(seed), inst.num_procs(), k)
    } else {
        FailureScenario::none()
    };

    let sim = simulate(&inst, &bundle.schedule, &scenario);
    let failed: Vec<String> = scenario.iter().map(|(p, _)| p.to_string()).collect();
    let mut out = format!(
        "scenario: {} failed [{}]\n",
        scenario.len(),
        failed.join(", ")
    );
    if sim.completed() {
        let _ = writeln!(
            out,
            "completed; achieved latency {:.3} (bounds: [{:.3}, {:.3}])",
            sim.latency,
            bundle.schedule.latency_lower_bound(),
            bundle.schedule.latency_upper_bound()
        );
    } else {
        let _ = writeln!(
            out,
            "FAILED: a task lost all replicas (scenario exceeds the design ε = {})",
            bundle.schedule.epsilon
        );
    }
    if args.has_flag("gantt") {
        let _ = write!(out, "\n{}", gantt(&inst, &bundle.schedule, &sim, 72));
    }
    Ok(out)
}

/// Worker count from `--threads` (0 or absent = `FTSCHED_THREADS` /
/// available parallelism via [`default_threads`]).
fn threads_from(args: &Args) -> Result<usize, String> {
    let t: usize = args.get_num("threads", 0)?;
    Ok(if t == 0 { default_threads() } else { t })
}

/// `ftsched experiment` — drives the paper's sweeps through the rayon
/// shim's parallel harness.
pub fn experiment(args: &Args) -> Result<String, String> {
    let what = args.require("what")?;
    let threads = threads_from(args)?;
    let reps: usize = args.get_num("reps", 10)?;

    match what {
        "fig1" | "fig2" | "fig3" | "fig4" => {
            let mut cfg = match what {
                "fig1" => FigureConfig::comparison("fig1", 1, reps),
                "fig2" => FigureConfig::comparison("fig2", 2, reps),
                "fig3" => FigureConfig::comparison("fig3", 5, reps),
                _ => FigureConfig::small_platform(reps),
            };
            if let Some(list) = args.get("algorithms") {
                cfg.extra_algorithms = parse_algorithm_list(list)?;
            }
            let fig = run_figure_with_threads(&cfg, threads).map_err(|e| e.to_string())?;
            let mut out = format!(
                "== {what}: ε = {}, {} processors, {} graphs/point, {threads} thread(s) ==\n",
                cfg.epsilon, cfg.procs, cfg.repetitions
            );
            let mut series: Vec<String> = vec![
                "FTSA-LowerBound".into(),
                "FTSA-UpperBound".into(),
                "FaultFree-FTSA".into(),
                format!("FTSA with {} Crash", cfg.epsilon),
            ];
            if cfg.compare_algorithms {
                series.push("MC-FTSA-LowerBound".into());
                series.push("FTBAR-LowerBound".into());
                series.push(format!("MC-FTSA with {} Crash", cfg.epsilon));
                series.push(format!("FTBAR with {} Crash", cfg.epsilon));
            }
            for alg in &cfg.extra_algorithms {
                for s in [
                    format!("{}-LowerBound", alg.name()),
                    format!("{} with {} Crash", alg.name(), cfg.epsilon),
                ] {
                    if !series.contains(&s) {
                        series.push(s);
                    }
                }
            }
            let refs: Vec<&str> = series.iter().map(String::as_str).collect();
            let _ = write!(out, "{}", figure_to_table(&fig, &refs));
            if let Some(dir) = args.get("out") {
                let path = write_figure_csv(&fig, std::path::Path::new(dir))
                    .map_err(|e| format!("writing CSV: {e}"))?;
                let _ = writeln!(out, "[csv] {}", path.display());
            }
            Ok(out)
        }
        "table1" => {
            // Table 1's primary output is wall-clock seconds; co-running
            // rows would contend for cores and distort exactly what the
            // table measures. Sequential by default — a row sweep is
            // only parallelized when --threads asks for it explicitly.
            let threads: usize = args.get_num("threads", 1)?.max(1);
            let mut cfg = if args.has_flag("paper") {
                Table1Config::paper()
            } else {
                Table1Config::quick()
            };
            if let Some(list) = args.get("sizes") {
                let sizes: Result<Vec<usize>, _> = list.split(',').map(str::parse).collect();
                cfg.sizes = sizes.map_err(|_| "bad --sizes list (expected e.g. 100,500)")?;
            }
            cfg.procs = args.get_num("procs", cfg.procs)?;
            cfg.epsilon = args.get_num("epsilon", cfg.epsilon)?;
            if let Some(list) = args.get("algorithms") {
                cfg.extra_algorithms = parse_algorithm_list(list)?;
            }
            let rows = run_table1_with_threads(&cfg, threads).map_err(|e| e.to_string())?;
            Ok(format!(
                "== table1: {} processors, ε = {}, {threads} thread(s) ==\n{}",
                cfg.procs,
                cfg.epsilon,
                format_table1(&rows)
            ))
        }
        "reliability" => {
            let bundle_path = args.require("bundle")?;
            let s = std::fs::read_to_string(bundle_path)
                .map_err(|e| format!("reading {bundle_path}: {e}"))?;
            let bundle =
                Bundle::from_json(&s).map_err(|e| format!("parsing {bundle_path}: {e}"))?;
            let inst = bundle.instance();
            let p: f64 = args.get_num("p", 0.1)?;
            let samples: usize = args.get_num("samples", 10_000)?;
            let seed: u64 = args.get_num("seed", 42)?;
            let mc = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .map_err(|e| e.to_string())?
                .install(|| {
                    survival_probability_monte_carlo_par(&inst, &bundle.schedule, p, samples, seed)
                });
            Ok(format!(
                "Monte-Carlo reliability ({samples} samples, p = {p}, {threads} thread(s))\n\
                 P(survive) = {:.6}\nE[latency | survival] = {:.3}\n",
                mc.survival, mc.expected_latency
            ))
        }
        other => Err(format!(
            "unknown experiment `{other}` (expected fig1|fig2|fig3|fig4|table1|reliability)"
        )),
    }
}

/// `ftsched campaign` — runs a declarative scenario grid: a named
/// preset (`--preset fig1|…|ci-smoke`) or an arbitrary spec file
/// (`--spec grid.json`), with streaming aggregation and unified CSV/JSON
/// emission. Results are bit-identical at any `--threads` count.
pub fn campaign(args: &Args) -> Result<String, String> {
    let threads = threads_from(args)?;
    // The repetition override applies to *both* sources — a spec file
    // run with `--quick` must actually shrink, not silently ignore the
    // flag and burn the full grid.
    let reps_override: Option<usize> = if args.has_flag("quick") {
        Some(10)
    } else {
        args.get("reps")
            .map(|s| s.parse().map_err(|_| "bad --reps"))
            .transpose()?
    };
    let mut spec: CampaignSpec = match (args.get("preset"), args.get("spec")) {
        (Some(_), Some(_)) => return Err("--preset and --spec are mutually exclusive".into()),
        (Some(name), None) => presets::preset(name, None).ok_or_else(|| {
            format!(
                "unknown preset `{name}` (expected one of: {})",
                presets::PRESET_NAMES.join("|")
            )
        })?,
        (None, Some(path)) => {
            let s = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            CampaignSpec::from_json(&s).map_err(|e| format!("parsing {path}: {e}"))?
        }
        (None, None) => {
            return Err(format!(
                "campaign needs --preset <name> or --spec <file.json>\n\
                 presets: {}",
                presets::PRESET_NAMES.join(", ")
            ))
        }
    };
    if let Some(r) = reps_override {
        if r == 0 {
            return Err("--reps must be at least 1".into());
        }
        spec.repetitions = r;
    }
    if args.has_flag("dump-spec") {
        return spec.to_json();
    }

    let res = run_campaign_with_threads(&spec, threads).map_err(|e| e.to_string())?;
    let mut out = format!(
        "== campaign {}: {} cells ({} workloads x {} platforms x {} eps x {} reps), \
         {threads} thread(s) ==\n\n",
        spec.id,
        spec.num_cells(),
        spec.workloads.len(),
        spec.platforms.len(),
        spec.epsilons.len(),
        spec.repetitions,
    );
    out.push_str(&campaign_to_table(&res));
    if let Some(dir) = args.get("out") {
        let (csv, json) = write_campaign_outputs(&res, std::path::Path::new(dir))
            .map_err(|e| format!("writing outputs: {e}"))?;
        let _ = writeln!(out, "[csv] {}", csv.display());
        let _ = writeln!(out, "[json] {}", json.display());
    }
    Ok(out)
}

/// `ftsched serve` — the sharded streaming campaign service. Binds
/// (recovering persisted runs first when `--data-dir` is given), prints
/// the listening address, then blocks in the accept loop; the response
/// bytes for a spec are identical to what `ftsched campaign` writes for
/// it (see `experiments::serve` for the wire protocol and the
/// durability contract).
pub fn serve(args: &Args) -> Result<String, String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878");
    let config = ServeConfig {
        threads: threads_from(args)?,
        queue: args.get_num("queue", 32)?,
        data_dir: args.get("data-dir").map(std::path::PathBuf::from),
        ..ServeConfig::default()
    };
    let durable = config.data_dir.is_some();
    let server = Server::bind(addr, config).map_err(|e| format!("binding {addr}: {e}"))?;
    let local = server.local_addr().map_err(|e| e.to_string())?;
    println!(
        "ftsched serve listening on http://{local} \
         (POST /campaigns, GET /campaigns[/<key>], GET /healthz{})",
        if durable { ", durable runs on" } else { "" }
    );
    // The port line is parsed by supervisors and tests spawning the
    // binary with piped stdout; push it past the pipe's block buffer.
    std::io::Write::flush(&mut std::io::stdout()).map_err(|e| e.to_string())?;
    server.run().map_err(|e| format!("serve: {e}"))?;
    Ok(String::new())
}

/// `ftsched info`
pub fn info(args: &Args) -> Result<String, String> {
    let dag = read_graph(args.require("graph")?)?;
    let st = taskgraph::metrics::stats(&dag);
    Ok(format!(
        "tasks: {}\nedges: {}\nentries: {}\nexits: {}\ndepth: {}\nwidth (level bound): {}\n\
         mean out-degree: {:.2}\ntotal work: {:.1}\ntotal volume: {:.1}\n\
         computation critical path: {:.1}\n",
        st.tasks,
        st.edges,
        st.entries,
        st.exits,
        st.depth,
        st.width_lb,
        st.mean_out_degree,
        st.total_work,
        st.total_volume,
        taskgraph::metrics::critical_path_length(&dag, 0.0),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>()).unwrap()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("ftsched_cli_{name}_{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn full_cli_round_trip() {
        let graph = tmp("graph.json");
        let bundle = tmp("bundle.json");

        let msg = generate(&argv(&format!("--family gauss --size 6 --out {graph}"))).unwrap();
        assert!(msg.contains("tasks"));

        let msg = schedule_cmd(&argv(&format!(
            "--graph {graph} --procs 6 --epsilon 2 --algorithm mc-ftsa --out {bundle}"
        )))
        .unwrap();
        assert!(msg.contains("latency (M*/M)"), "{msg}");
        assert!(msg.contains("utilization"));

        let msg = simulate_cmd(&argv(&format!("--bundle {bundle} --fail 0,1 --gantt"))).unwrap();
        assert!(msg.contains("completed"), "{msg}");
        assert!(msg.contains('#'));

        let msg = info(&argv(&format!("--graph {graph}"))).unwrap();
        assert!(msg.contains("critical path"));

        let _ = std::fs::remove_file(graph);
        let _ = std::fs::remove_file(bundle);
    }

    #[test]
    fn too_many_failures_reported() {
        let graph = tmp("g2.json");
        let bundle = tmp("b2.json");
        generate(&argv(&format!("--family fft --size 8 --out {graph}"))).unwrap();
        schedule_cmd(&argv(&format!(
            "--graph {graph} --procs 4 --epsilon 0 --out {bundle}"
        )))
        .unwrap();
        let msg = simulate_cmd(&argv(&format!("--bundle {bundle} --fail 0,1,2,3"))).unwrap();
        assert!(msg.contains("FAILED"));
        let _ = std::fs::remove_file(graph);
        let _ = std::fs::remove_file(bundle);
    }

    #[test]
    fn monte_carlo_simulate_and_reliability() {
        let graph = tmp("g3.json");
        let bundle = tmp("b3.json");
        generate(&argv(&format!("--family gauss --size 5 --out {graph}"))).unwrap();
        schedule_cmd(&argv(&format!(
            "--graph {graph} --procs 6 --epsilon 1 --out {bundle}"
        )))
        .unwrap();

        let msg = simulate_cmd(&argv(&format!(
            "--bundle {bundle} --replications 12 --crashes 1 --threads 2"
        )))
        .unwrap();
        assert!(msg.contains("completed: 12/12"), "{msg}");
        // Identical campaign at a different thread count.
        let msg2 = simulate_cmd(&argv(&format!(
            "--bundle {bundle} --replications 12 --crashes 1 --threads 1"
        )))
        .unwrap();
        let stats = |m: &str| {
            m.lines()
                .find(|l| l.starts_with("latency over completed runs"))
                .map(String::from)
        };
        assert_eq!(stats(&msg), stats(&msg2));

        let msg = experiment(&argv(&format!(
            "--what reliability --bundle {bundle} --p 0.2 --samples 500 --threads 2"
        )))
        .unwrap();
        assert!(msg.contains("P(survive)"), "{msg}");

        // Single-run scenario options conflict with the campaign mode.
        let err = simulate_cmd(&argv(&format!(
            "--bundle {bundle} --replications 4 --fail 0"
        )))
        .unwrap_err();
        assert!(err.contains("--fail"), "{err}");
        let err = simulate_cmd(&argv(&format!(
            "--bundle {bundle} --replications 4 --random-failures 1"
        )))
        .unwrap_err();
        assert!(err.contains("--random-failures"), "{err}");
        let err = simulate_cmd(&argv(&format!(
            "--bundle {bundle} --replications 4 --gantt"
        )))
        .unwrap_err();
        assert!(err.contains("--gantt"), "{err}");

        let _ = std::fs::remove_file(graph);
        let _ = std::fs::remove_file(bundle);
    }

    #[test]
    fn experiment_figure_and_table_run() {
        let msg = experiment(&argv("--what fig4 --reps 2 --threads 2")).unwrap();
        assert!(msg.contains("FTSA with 2 Crash"), "{msg}");
        let msg = experiment(&argv(
            "--what table1 --sizes 60,120 --procs 10 --epsilon 1 --threads 2",
        ))
        .unwrap();
        assert!(msg.contains("Number of tasks"), "{msg}");
        assert!(experiment(&argv("--what nope")).is_err());
    }

    #[test]
    fn campaign_preset_runs_and_emits_outputs() {
        let dir = tmp("campaign_out");
        let msg = campaign(&argv(&format!(
            "--preset ci-smoke --reps 1 --threads 2 --out {dir}"
        )))
        .unwrap();
        assert!(msg.contains("campaign ci-smoke"), "{msg}");
        assert!(msg.contains("FTSA-LowerBound"), "{msg}");
        let json_path = format!("{dir}/ci-smoke.campaign.json");
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("paper-layered[30..40]"));
        assert!(json.contains("wavefront[4]"));
        let csv = std::fs::read_to_string(format!("{dir}/ci-smoke.campaign.csv")).unwrap();
        assert!(csv.starts_with("workload,procs,granularity,epsilon,series"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_spec_file_round_trip() {
        let dir = tmp("campaign_spec");
        std::fs::create_dir_all(&dir).unwrap();
        // Dump a preset spec, edit nothing, run it back through --spec.
        let spec_json = campaign(&argv("--preset ci-smoke --reps 1 --dump-spec")).unwrap();
        let path = format!("{dir}/grid.json");
        std::fs::write(&path, &spec_json).unwrap();
        let msg = campaign(&argv(&format!("--spec {path} --threads 1"))).unwrap();
        assert!(msg.contains("campaign ci-smoke"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_spec_file_honours_reps_override() {
        // `--quick` / `--reps` must shrink a spec-file run too, not be
        // silently dropped.
        let dir = tmp("campaign_reps");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_json = campaign(&argv("--preset ci-smoke --reps 3 --dump-spec")).unwrap();
        // --dump-spec reflects the override…
        assert!(spec_json.contains("\"repetitions\": 3"), "{spec_json}");
        let path = format!("{dir}/grid.json");
        std::fs::write(&path, &spec_json).unwrap();
        // …and a run from the file applies a further override.
        let msg = campaign(&argv(&format!("--spec {path} --reps 1 --threads 1"))).unwrap();
        assert!(msg.contains("x 1 reps"), "{msg}");
        assert!(campaign(&argv(&format!("--spec {path} --reps 0"))).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_argument_errors() {
        assert!(campaign(&argv("")).unwrap_err().contains("--preset"));
        assert!(campaign(&argv("--preset nope"))
            .unwrap_err()
            .contains("unknown preset"));
        let err = campaign(&argv("--preset fig1 --spec x.json")).unwrap_err();
        assert!(err.contains("mutually exclusive"));
        assert!(campaign(&argv("--spec /definitely/missing.json")).is_err());
    }

    #[test]
    fn unknown_family_and_algorithm() {
        assert!(generate(&argv("--family nope --out /tmp/x.json")).is_err());
        assert!(parse_algorithm("nope").is_err());
        assert!(parse_algorithm("ftbar").is_ok());
        assert!(parse_algorithm_list("p-ftsa, mc-ftbar").is_ok());
        assert!(parse_algorithm_list("p-ftsa,wat").is_err());
    }

    #[test]
    fn cross_combination_algorithms_end_to_end() {
        // The pipeline cross-combinations must be first-class citizens:
        // schedule → simulate via the CLI, and act as extra series in
        // the experiment sweeps.
        let graph = tmp("g5.json");
        generate(&argv(&format!("--family gauss --size 6 --out {graph}"))).unwrap();
        for alg in ["p-ftsa", "ftsa-mst", "mc-ftbar"] {
            let bundle = tmp(&format!("b5_{alg}.json"));
            let msg = schedule_cmd(&argv(&format!(
                "--graph {graph} --procs 6 --epsilon 2 --algorithm {alg} --out {bundle}"
            )))
            .unwrap();
            assert!(msg.contains("latency (M*/M)"), "{alg}: {msg}");
            let msg = simulate_cmd(&argv(&format!("--bundle {bundle} --fail 0,1"))).unwrap();
            assert!(msg.contains("completed"), "{alg}: {msg}");
            let _ = std::fs::remove_file(bundle);
        }
        let _ = std::fs::remove_file(graph);

        let msg = experiment(&argv(
            "--what fig4 --reps 2 --threads 2 --algorithms p-ftsa,mc-ftbar",
        ))
        .unwrap();
        assert!(msg.contains("P-FTSA-LowerBound"), "{msg}");
        assert!(msg.contains("MC-FTBAR with 2 Crash"), "{msg}");

        let msg = experiment(&argv(
            "--what table1 --sizes 60 --procs 10 --epsilon 1 --algorithms p-ftsa,mc-ftbar",
        ))
        .unwrap();
        assert!(msg.contains("P-FTSA") && msg.contains("MC-FTBAR"), "{msg}");
    }
}
