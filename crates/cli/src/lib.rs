//! Library backing the `ftsched` command-line tool.
//!
//! Commands:
//!
//! * `generate` — emit a task graph (random family or structured
//!   workload) as JSON, optionally with a Graphviz DOT rendering.
//! * `schedule` — read a graph, draw a paper-style random platform, run
//!   one of the algorithms, and write a self-contained *bundle* (graph +
//!   platform + execution matrix + schedule) for later simulation.
//! * `simulate` — read a bundle, crash a chosen or random processor set,
//!   and report the achieved latency with an ASCII Gantt chart; or run a
//!   parallel Monte-Carlo crash campaign with `--replications`.
//! * `experiment` — drive the paper's figure/table sweeps and the
//!   Monte-Carlo reliability estimator through the rayon shim's parallel
//!   harness (`--threads` pins the worker count; results are identical
//!   at any thread count).
//! * `campaign` — run a declarative scenario grid: a named preset or an
//!   arbitrary `CampaignSpec` JSON file, with streaming aggregation and
//!   unified CSV/JSON emission (see `experiments::campaign`).
//! * `serve` — the streaming campaign service: accept `CampaignSpec`
//!   JSON over HTTP, shard groups across workers, and chunk-stream the
//!   statistics back byte-identical to `campaign`'s file emission; with
//!   `--data-dir`, runs are durable — WAL-checkpointed per group and
//!   resumed bit-exactly after a crash (see `experiments::serve`).
//! * `info` — structural statistics of a graph file.
//!
//! Argument parsing is the tiny shared `--key value` scanner from
//! `experiments::args` — the sanctioned dependency set has no CLI
//! parser, and the surface is small.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod bundle;
pub mod commands;

pub use args::Args;
pub use bundle::Bundle;

/// Entry point shared by `main` and the tests.
pub fn run(argv: &[String]) -> Result<String, String> {
    let Some(cmd) = argv.first() else {
        return Err(usage());
    };
    let args = Args::parse(&argv[1..])?;
    match cmd.as_str() {
        "generate" => commands::generate(&args),
        "schedule" => commands::schedule_cmd(&args),
        "simulate" => commands::simulate_cmd(&args),
        "experiment" => commands::experiment(&args),
        "campaign" => commands::campaign(&args),
        "serve" => commands::serve(&args),
        "info" => commands::info(&args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    }
}

/// The usage banner.
pub fn usage() -> String {
    "\
ftsched — fault-tolerant scheduling of precedence task graphs

USAGE:
  ftsched generate --family <layered|erdos|forkjoin|gauss|fft|stencil|wavefront|mapreduce>
                   [--tasks N] [--size N] [--seed S] --out graph.json [--dot graph.dot]
  ftsched schedule --graph graph.json --procs M --epsilon E
                   [--algorithm ftsa|mc-ftsa|mc-ftsa-bn|ftbar|p-ftsa|ftsa-mst|mc-ftbar]
                   [--seed S] [--granularity G] --out bundle.json
  ftsched simulate --bundle bundle.json [--fail 0,3,7 | --random-failures K]
                   [--replications N [--crashes K] [--threads T]]
                   [--seed S] [--gantt]
  ftsched experiment --what <fig1|fig2|fig3|fig4|table1|reliability>
                     [--reps N] [--threads T] [--out DIR]
                     [--algorithms p-ftsa,mc-ftbar,...]  (extra series, figures+table1)
                     [--paper | --sizes 100,500] [--procs M] [--epsilon E]  (table1)
                     [--bundle b.json] [--p P] [--samples N]  (reliability)
  ftsched campaign --preset <fig1|fig2|fig3|fig4|table1|table1-full|contention|reliability|timed-crash|online|ci-smoke>
                   | --spec grid.json
                   [--reps N | --quick] [--threads T] [--out DIR] [--dump-spec]
  ftsched serve [--addr 127.0.0.1:7878] [--threads T] [--queue N] [--data-dir DIR]
                (POST /campaigns with a CampaignSpec JSON body streams the
                 statistics; resubmitting a spec replays the existing run;
                 GET /campaigns lists runs, GET /campaigns/<key> replays or
                 resumes one; --data-dir makes runs durable: a restart
                 recovers them and resumes interrupted runs bit-exactly)
  ftsched info --graph graph.json

`--threads 0` (the default) resolves from FTSCHED_THREADS or the
available parallelism; sweeps yield identical results at any thread
count. Exception: table1 rows time the algorithms, so they stay
sequential unless --threads explicitly asks otherwise.
"
    .to_string()
}
