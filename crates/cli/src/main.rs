//! The `ftsched` command-line tool. See [`ftsched_cli::usage`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match ftsched_cli::run(&argv) {
        Ok(msg) => print!("{msg}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
