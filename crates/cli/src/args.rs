//! Argument parsing: re-exported from the shared scanner in
//! `experiments::args` — one parser across the CLI and every experiment
//! binary (the duplication this module used to carry was deleted in the
//! campaign refactor).

pub use experiments::args::Args;
