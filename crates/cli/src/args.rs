//! Minimal `--key value` / `--flag` argument scanner.

use std::collections::HashMap;

/// Parsed command-line arguments: `--key value` pairs and bare flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `argv` (without the command word). Keys must start with
    /// `--`; a key followed by another key (or nothing) is a flag.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got `{}`", argv[i]))?;
            match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    values.insert(key.to_string(), v.clone());
                    i += 2;
                }
                _ => {
                    flags.push(key.to_string());
                    i += 1;
                }
            }
        }
        Ok(Args { values, flags })
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Parsed numeric option with default.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| format!("option --{key}: cannot parse `{s}`")),
        }
    }

    /// Required numeric option.
    pub fn require_num<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.require(key)?
            .parse()
            .map_err(|_| format!("option --{key}: cannot parse `{}`", self.get(key).unwrap()))
    }

    /// Bare-flag presence.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = Args::parse(&argv("--tasks 120 --gantt --out x.json")).unwrap();
        assert_eq!(a.get("tasks"), Some("120"));
        assert_eq!(a.get("out"), Some("x.json"));
        assert!(a.has_flag("gantt"));
        assert!(!a.has_flag("tasks"));
    }

    #[test]
    fn numeric_helpers() {
        let a = Args::parse(&argv("--epsilon 2")).unwrap();
        assert_eq!(a.require_num::<usize>("epsilon").unwrap(), 2);
        assert_eq!(a.get_num::<usize>("procs", 20).unwrap(), 20);
        assert!(a.require_num::<usize>("missing").is_err());
    }

    #[test]
    fn rejects_bare_words() {
        assert!(Args::parse(&argv("tasks 120")).is_err());
    }

    #[test]
    fn bad_number_reported() {
        let a = Args::parse(&argv("--tasks many")).unwrap();
        let err = a.get_num::<usize>("tasks", 1).unwrap_err();
        assert!(err.contains("cannot parse"));
    }
}
