//! Kill-resume fault injection against the real release binary: spawn
//! `ftsched serve --data-dir`, POST a multi-group campaign, SIGKILL the
//! process mid-stream (after at least one WAL frame is durable),
//! restart on the same data directory, and assert the resumed response
//! is **byte-identical** to an uninterrupted control run — at 1 and 4
//! worker threads. This is the acceptance gate of the durability
//! contract: recovery uses persisted state only (the second process
//! shares nothing with the first but the data dir).

use experiments::campaign::{presets, run_campaign_with_threads, CampaignSpec, PlatformSpec};
use experiments::output::campaign_to_json;
use experiments::serve::spec_key;
use experiments::store::{wal, Store};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

/// Repetitions per group: high enough that the heavy tail of the run
/// takes long enough to be killed reliably after its first durable
/// frame and well before its completion record.
const REPS: usize = 40;

fn kill_spec() -> CampaignSpec {
    let mut spec = presets::preset("ci-smoke", Some(REPS)).expect("ci-smoke preset");
    spec.id = "kill-resume".into();
    // Kill-window shaping: put the trivial wavefront workload first so
    // group 0's frame commits almost immediately, and widen the
    // platform axis to 8 groups so the heavy layered groups occupy a
    // whole second shard wave even at 4 threads — the SIGKILL (sent as
    // soon as one frame is durable) always lands mid-stream.
    spec.workloads.reverse();
    spec.platforms = vec![
        PlatformSpec::paper(8, 0.6),
        PlatformSpec::paper(8, 1.0),
        PlatformSpec::paper(8, 1.4),
        PlatformSpec::paper(8, 1.8),
    ];
    spec
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftsched_kill_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Serve {
    child: Child,
    port: u16,
}

/// Spawns the release-path binary (`CARGO_BIN_EXE_ftsched`) and parses
/// the listening port from its (flushed) startup line.
fn spawn_serve(data_dir: &Path, threads: usize) -> Serve {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ftsched"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            data_dir.to_str().expect("utf-8 scratch path"),
        ])
        .env("FTSCHED_THREADS", threads.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ftsched serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listening line");
    let port = line
        .split("http://127.0.0.1:")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|p| p.parse::<u16>().ok())
        .unwrap_or_else(|| panic!("no port in serve banner: {line:?}"));
    Serve { child, port }
}

fn post_request(spec_json: &str) -> String {
    format!(
        "POST /campaigns HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{spec_json}",
        spec_json.len()
    )
}

/// POSTs the spec and returns `(X-Campaign-Run header, de-chunked body)`.
fn post_and_read(port: u16, spec_json: &str) -> (String, String) {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    stream
        .write_all(post_request(spec_json).as_bytes())
        .expect("send request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let (head, payload) = text.split_once("\r\n\r\n").expect("header block");
    assert!(
        head.starts_with("HTTP/1.1 200 OK"),
        "unexpected response: {head}"
    );
    let run_header = head
        .lines()
        .find_map(|l| l.strip_prefix("X-Campaign-Run: "))
        .expect("X-Campaign-Run header")
        .to_string();
    (run_header, de_chunk(payload))
}

fn de_chunk(mut rest: &str) -> String {
    let mut body = String::new();
    loop {
        let (size_line, after) = rest.split_once("\r\n").expect("chunk size line");
        let size_hex = size_line.split(';').next().unwrap_or(size_line);
        let size = usize::from_str_radix(size_hex.trim(), 16).expect("hex chunk size");
        if size == 0 {
            return body;
        }
        body.push_str(&after[..size]);
        rest = after[size..].strip_prefix("\r\n").expect("chunk CRLF");
    }
}

/// Waits until the run's WAL holds at least one complete, checksummed
/// frame — the earliest moment a SIGKILL leaves resumable state behind.
fn wait_for_first_frame(wal_path: &Path, deadline: Duration) {
    let start = Instant::now();
    loop {
        if wal_path.exists() {
            if let Ok(contents) = wal::read(wal_path) {
                if !contents.groups.is_empty() {
                    return;
                }
            }
        }
        assert!(
            start.elapsed() < deadline,
            "no durable WAL frame appeared within {deadline:?}"
        );
        thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn sigkill_mid_stream_resumes_byte_identically() {
    let spec = kill_spec();
    let spec_json = spec.to_json().expect("spec serializes");
    let key = spec_key(&spec);
    // The uninterrupted control run (what `ftsched campaign` would
    // write; thread count is irrelevant by the determinism contract).
    let control = campaign_to_json(&run_campaign_with_threads(&spec, 2).expect("valid spec"));

    for threads in [1usize, 4] {
        let dir = scratch_dir(&format!("t{threads}"));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let wal_path = Store::open(&dir).expect("store").wal_path(key);

        // First server: submit, wait for one durable group, SIGKILL.
        let mut serve = spawn_serve(&dir, threads);
        let port = serve.port;
        let json = spec_json.clone();
        let victim = thread::spawn(move || {
            // Stream into the void; the read dies with the process.
            let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
            stream
                .write_all(post_request(&json).as_bytes())
                .expect("send");
            let mut sink = Vec::new();
            let _ = stream.read_to_end(&mut sink);
        });
        wait_for_first_frame(&wal_path, Duration::from_secs(120));
        serve.child.kill().expect("SIGKILL serve");
        serve.child.wait().expect("reap serve");
        victim.join().expect("victim thread");

        // Second server, same data dir, nothing else shared: recovery
        // must demote the torn run and resume only the missing groups.
        let mut serve2 = spawn_serve(&dir, threads);
        let (run_header, body) = post_and_read(serve2.port, &spec_json);
        assert_eq!(
            run_header, "resumed",
            "restart must resume from persisted state at {threads} thread(s)"
        );
        assert_eq!(
            body, control,
            "resumed body diverges from the uninterrupted control at {threads} thread(s)"
        );

        // The completed run now replays as-is to a resubmission.
        let (replay_header, replay_body) = post_and_read(serve2.port, &spec_json);
        assert_eq!(replay_header, "existing");
        assert_eq!(replay_body, control);

        serve2.child.kill().expect("stop serve");
        serve2.child.wait().expect("reap serve");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
