#!/usr/bin/env sh
# Cache-residency measurement for the scheduler bench: runs the
# criterion smoke pass (1 sample per benchmark) under `perf stat`,
# counting last-level-cache references and misses, so the pred-major
# arrival-arena claim ("evaluation streams contiguous rows, the working
# set stays cache-resident") can be checked on real hardware rather
# than argued from layout.
#
# Usage:   tools/perf_llc.sh [extra criterion filter args...]
# Example: tools/perf_llc.sh large   # LLC profile of the large series
#
# The script is a no-op (exit 0 with a note) when `perf` is absent or
# the kernel forbids counters — CI containers and the dev box this PR
# was measured on have no perf, so BENCH_scheduler.json records
# wall-clock medians plus the constant evals/step counter evidence
# instead (see the `scaling` note there and the `complexity` test in
# crates/core/src/pipeline.rs). Record LLC numbers in the bench notes
# whenever a perf-capable box runs this.
set -eu

cd "$(dirname "$0")/.."

if ! command -v perf >/dev/null 2>&1; then
    echo "perf_llc: 'perf' not found on PATH - skipping LLC measurement." >&2
    echo "perf_llc: wall-clock + evals/step evidence lives in crates/bench/BENCH_scheduler.json." >&2
    exit 0
fi

if ! perf stat -e LLC-loads true >/dev/null 2>&1; then
    echo "perf_llc: 'perf stat' cannot open LLC counters here (permissions or" >&2
    echo "perf_llc: unsupported PMU) - skipping LLC measurement." >&2
    exit 0
fi

cargo bench --no-run -p ftsched-bench >/dev/null

exec perf stat -e LLC-loads,LLC-load-misses,LLC-stores,cache-references,cache-misses \
    cargo bench --bench scheduler -p ftsched-bench -- --test "$@"
