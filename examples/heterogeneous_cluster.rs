//! A realistic deployment scenario: an FFT pipeline on a two-tier
//! cluster (fast "big" nodes + slow "little" nodes behind a slower
//! interconnect), showing how replication interacts with heterogeneity
//! and how the Gantt trace shifts when the big nodes fail.
//!
//! Run with: `cargo run --release -p ftsched --example heterogeneous_cluster`

use ftsched::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // 32-point FFT: 32·(log2(32)+1) = 192 butterfly tasks, width 32.
    let dag = fft(32, 12.0, 30.0);
    let stats = taskgraph::metrics::stats(&dag);
    println!(
        "FFT(32): {} tasks, {} edges, depth {}, width {}",
        stats.tasks, stats.edges, stats.depth, stats.width_lb
    );

    // Two-tier platform: processors 0–3 are "big" (3x faster), 4–11 are
    // "little". Links inside a tier are fast (0.02), across tiers slow
    // (0.1) — a NUMA-ish interconnect.
    let m = 12usize;
    let tier = |p: usize| usize::from(p >= 4);
    let platform = Platform::from_fn(m, |a, b| if tier(a) == tier(b) { 0.02 } else { 0.1 });
    let speeds: Vec<f64> = (0..m)
        .map(|p| if tier(p) == 0 { 3.0 } else { 1.0 })
        .collect();
    let exec = ExecutionMatrix::consistent(&dag, &speeds);
    let inst = Instance::new(dag, platform, exec);

    let mut rng = StdRng::seed_from_u64(1234);
    let eps = 1usize;
    let sched = schedule(&inst, eps, Algorithm::McFtsaGreedy, &mut rng).unwrap();
    validate(&inst, &sched).unwrap();

    // Where did the replicas land?
    let mut per_tier = [0usize; 2];
    for t in inst.dag.tasks() {
        for r in sched.replicas_of(t) {
            per_tier[tier(r.proc.index())] += 1;
        }
    }
    println!(
        "\nplacement: {} replicas on big nodes, {} on little nodes",
        per_tier[0], per_tier[1]
    );
    println!(
        "fault-free latency M* = {:.1}, guaranteed M = {:.1}, messages = {}",
        sched.latency_lower_bound(),
        sched.latency_upper_bound(),
        sched.message_count(&inst.dag)
    );

    // Catastrophe drill: one big node down vs one little node down.
    for victim in [0u32, 11u32] {
        let scen = FailureScenario::at_time_zero([ProcId(victim)]);
        let sim = simulate(&inst, &sched, &scen);
        assert!(sim.completed());
        println!(
            "P{victim} ({}) down → achieved latency {:.1} (+{:.0}% vs M*)",
            if tier(victim as usize) == 0 {
                "big"
            } else {
                "little"
            },
            sim.latency,
            (sim.latency / sched.latency_lower_bound() - 1.0) * 100.0
        );
    }

    // Show the fault-free utilization.
    let sim = simulate(&inst, &sched, &FailureScenario::none());
    println!("\nfault-free Gantt (first 12 rows = processors):\n");
    let g = gantt(&inst, &sched, &sim, 64);
    for line in g.lines().take(m + 1) {
        println!("{line}");
    }
}
