//! The paper's Section 7 future work, in action: (1) how reliable is a
//! replicated schedule when *every* processor can fail probabilistically,
//! and (2) what do the replicated messages cost once network ports
//! serialize transfers?
//!
//! Run with: `cargo run --release -p ftsched --example reliability_and_contention`

use ftsched::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let procs = 10usize;
    let mut rng = StdRng::seed_from_u64(2718);
    let inst = paper_instance(
        &mut rng,
        &PaperInstanceConfig {
            procs,
            granularity: 0.5,
            ..Default::default()
        },
    );
    println!(
        "instance: {} tasks, {} edges, {} processors (communication-heavy, g = 0.5)\n",
        inst.num_tasks(),
        inst.dag.num_edges(),
        procs
    );

    // --- reliability ------------------------------------------------------
    println!("survival probability under iid processor failure probability p:");
    println!(
        "{:>4} {:>8} {:>12} {:>12} {:>22}",
        "ε", "p", "exact", "monte-carlo", "guaranteed P(≤ε fail)"
    );
    for eps in [1usize, 2] {
        let sched = schedule(&inst, eps, Algorithm::Ftsa, &mut rng).unwrap();
        for p in [0.05, 0.2] {
            let exact = survival_probability_exact(&inst, &sched, p);
            let mc = survival_probability_monte_carlo(
                &inst,
                &sched,
                p,
                5_000,
                &mut StdRng::seed_from_u64(eps as u64 * 100 + (p * 100.0) as u64),
            );
            println!(
                "{eps:>4} {p:>8.2} {exact:>12.5} {:>12.5} {:>22.5}",
                mc.survival,
                design_point_probability(procs, eps, p)
            );
        }
    }

    // --- contention -------------------------------------------------------
    println!("\none-port vs unbounded network, fault-free latency:");
    println!(
        "{:<10} {:>12} {:>12} {:>9} {:>10}",
        "algorithm", "unbounded", "one-port", "penalty", "transfers"
    );
    for (alg, eps) in [(Algorithm::Ftsa, 2usize), (Algorithm::McFtsaGreedy, 2)] {
        let sched = schedule(&inst, eps, alg, &mut StdRng::seed_from_u64(5)).unwrap();
        let unb = simulate_contention(
            &inst,
            &sched,
            &FailureScenario::none(),
            PortModel::Unbounded,
        );
        let one = simulate_contention(&inst, &sched, &FailureScenario::none(), PortModel::OnePort);
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>8.2}x {:>10}",
            alg.name(),
            unb.latency,
            one.latency,
            one.latency / unb.latency,
            one.transfers
        );
    }
    println!(
        "\nMC-FTSA's e(ε+1) messages queue far less than FTSA's e(ε+1)² — the\n\
         paper's Section 7 prediction, quantified."
    );
}
