//! The bi-criteria trade-off of Section 4.3: how many failures can a
//! latency budget buy? Sweeps the budget, reports the maximum tolerated
//! ε (linear scan and binary search), and demonstrates the early
//! infeasibility detection when both criteria are fixed.
//!
//! Run with: `cargo run --release -p ftsched --example bicriteria_tradeoff`

use ftsched::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(314);
    let inst = paper_instance(
        &mut rng,
        &PaperInstanceConfig {
            procs: 12,
            granularity: 1.0,
            ..Default::default()
        },
    );

    // Reference: the fault-free latency and the fully replicated one.
    let base = schedule(&inst, 0, Algorithm::Ftsa, &mut rng)
        .unwrap()
        .latency_upper_bound();
    println!(
        "instance: {} tasks on 12 processors; fault-free guaranteed latency {base:.0}\n",
        inst.num_tasks()
    );

    println!(
        "{:>8} {:>12} {:>14} {:>14}",
        "budget", "max ε (scan)", "max ε (binary)", "achieved M"
    );
    for factor in [1.0, 1.2, 1.5, 2.0, 3.0, 5.0] {
        let budget = base * factor;
        let lin = max_epsilon_linear(&inst, budget, 7);
        let bin = max_epsilon_binary(&inst, budget, 7);
        let (eps_l, m_l) = lin
            .map(|r| (r.epsilon as i64, r.schedule.latency_upper_bound()))
            .unwrap_or((-1, f64::NAN));
        let eps_b = bin.map(|r| r.epsilon as i64).unwrap_or(-1);
        println!("{:>7.1}x {:>12} {:>14} {:>14.0}", factor, eps_l, eps_b, m_l);
    }

    // Both criteria fixed: the deadline test aborts the run as soon as
    // one task proves the combination infeasible.
    println!("\nboth criteria fixed (ε = 2):");
    for factor in [1.1, 2.0, 4.0] {
        let budget = base * factor;
        let mut tie = StdRng::seed_from_u64(7);
        match ftsa_both_criteria(&inst, 2, budget, &mut tie) {
            Ok(s) => println!(
                "  budget {:>7.0}: feasible, M = {:.0}",
                budget,
                s.latency_upper_bound()
            ),
            Err(e) => println!("  budget {budget:>7.0}: {e}"),
        }
    }
}
