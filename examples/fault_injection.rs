//! Fault-injection campaign: schedule one instance, then sweep *every*
//! possible failure pattern up to ε processors and report the latency
//! distribution — an empirical check of Proposition 4.2's `M* ≤ L ≤ M`.
//!
//! Run with: `cargo run --release -p ftsched --example fault_injection`

use ftsched::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let epsilon = 2usize;
    let procs = 8usize;

    let mut rng = StdRng::seed_from_u64(2024);
    let inst = paper_instance(
        &mut rng,
        &PaperInstanceConfig {
            procs,
            granularity: 1.0,
            ..Default::default()
        },
    );
    let sched = schedule(&inst, epsilon, Algorithm::Ftsa, &mut rng).expect("schedulable");
    let m_star = sched.latency_lower_bound();
    let m_up = sched.latency_upper_bound();
    println!(
        "instance: {} tasks, {} processors, ε = {epsilon}",
        inst.num_tasks(),
        procs
    );
    println!("bounds: M* = {m_star:.1}, M = {m_up:.1}\n");

    // Enumerate all single and double failures.
    let mut latencies = Vec::new();
    let mut worst: (f64, Vec<u32>) = (0.0, vec![]);
    for a in 0..procs as u32 {
        for pattern in std::iter::once(vec![a]).chain(((a + 1)..procs as u32).map(|b| vec![a, b])) {
            let scen = FailureScenario::at_time_zero(pattern.iter().copied().map(ProcId));
            let sim = simulate(&inst, &sched, &scen);
            assert!(sim.completed(), "≤ ε failures must be masked");
            assert!(sim.latency >= m_star - 1e-6 && sim.latency <= m_up + 1e-6);
            if sim.latency > worst.0 {
                worst = (sim.latency, pattern.clone());
            }
            latencies.push(sim.latency);
        }
    }

    latencies.sort_by(f64::total_cmp);
    let n = latencies.len();
    let pct = |q: f64| latencies[((n - 1) as f64 * q) as usize];
    println!("{n} failure patterns simulated (all 1- and 2-subsets)");
    println!(
        "latency min/median/p90/max: {:.1} / {:.1} / {:.1} / {:.1}",
        latencies[0],
        pct(0.5),
        pct(0.9),
        latencies[n - 1]
    );
    println!(
        "worst pattern: processors {:?} → latency {:.1} ({}% of the M guarantee)",
        worst.1,
        worst.0,
        (worst.0 / m_up * 100.0).round()
    );

    // Mid-execution crashes (the extension beyond the paper's t=0 model).
    println!("\nmid-execution crashes of P0 at increasing times:");
    for tau in [0.0, m_star * 0.25, m_star * 0.5, m_star * 0.75] {
        let scen = FailureScenario::new(vec![(ProcId(0), tau)]);
        let sim = simulate(&inst, &sched, &scen);
        println!(
            "  fail(P0 @ {tau:>8.1}) → latency {:.1} ({} replicas lost)",
            sim.latency,
            sim.status
                .iter()
                .flatten()
                .filter(|s| matches!(s, simulator::crash::ReplicaStatus::Dead))
                .count()
        );
    }
}
