//! Quickstart: build a task graph, schedule it fault-tolerantly, inspect
//! the bounds, crash a processor, and print the executed Gantt chart.
//!
//! Run with: `cargo run -p ftsched --example quickstart`

use ftsched::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // 1. A small application DAG: prepare → {filter_a, filter_b} → merge.
    let mut b = DagBuilder::new();
    let prepare = b.add_labelled_task(8.0, "prepare");
    let filter_a = b.add_labelled_task(20.0, "filter_a");
    let filter_b = b.add_labelled_task(14.0, "filter_b");
    let merge = b.add_labelled_task(6.0, "merge");
    b.add_edge(prepare, filter_a, 40.0);
    b.add_edge(prepare, filter_b, 40.0);
    b.add_edge(filter_a, merge, 25.0);
    b.add_edge(filter_b, merge, 25.0);
    let dag = b.build().expect("acyclic");

    // 2. A heterogeneous 4-processor platform: two fast nodes, two slow,
    //    symmetric links with a 0.05 s/unit delay.
    let platform = Platform::uniform_delay(4, 0.05);
    let exec = ExecutionMatrix::consistent(&dag, &[2.0, 2.0, 1.0, 1.0]);
    let inst = Instance::new(dag, platform, exec);

    // 3. Schedule with ε = 1: every task runs as 2 replicas on distinct
    //    processors, so any single fail-stop failure is masked.
    let mut rng = StdRng::seed_from_u64(7);
    let sched = schedule(&inst, 1, Algorithm::Ftsa, &mut rng).expect("schedulable");
    validate(&inst, &sched).expect("structurally valid");

    println!(
        "tasks: {}, replicas per task: {}",
        inst.num_tasks(),
        sched.epsilon + 1
    );
    println!(
        "latency if nothing fails (M*): {:.2}",
        sched.latency_lower_bound()
    );
    println!(
        "guaranteed latency under 1 failure (M): {:.2}",
        sched.latency_upper_bound()
    );
    println!("messages shipped: {}", sched.message_count(&inst.dag));

    // 4. Crash the fastest processor and replay the execution.
    let scenario = FailureScenario::at_time_zero([ProcId(0)]);
    let sim = simulate(&inst, &sched, &scenario);
    assert!(
        sim.completed(),
        "the schedule tolerates one failure by design"
    );
    println!("\nachieved latency with P0 down: {:.2}", sim.latency);

    println!("\nGantt chart of the crashed run (P0 row stays idle):\n");
    print!("{}", gantt(&inst, &sched, &sim, 60));
}
