//! Scheduling a structured workload: the Gaussian-elimination task graph
//! the scheduling literature loves. Compares FTSA, MC-FTSA and FTBAR on
//! latency, message volume and resilience, for the same DAG.
//!
//! Run with: `cargo run --release -p ftsched --example gaussian_elimination`

use ftsched::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let n = 12; // matrix dimension → (n-1) + n(n-1)/2 = 77 tasks
    let epsilon = 2;
    let dag = gaussian_elimination(n, 10.0, 1.0);
    println!(
        "Gaussian elimination, n = {n}: {} tasks, {} edges, critical path {:.0} work units",
        dag.num_tasks(),
        dag.num_edges(),
        taskgraph::metrics::critical_path_length(&dag, 0.0),
    );

    let mut rng = StdRng::seed_from_u64(99);
    let platform = random_platform(&mut rng, 12, 0.5, 1.0);
    let exec = ExecutionMatrix::unrelated_with_procs(&dag, 12, &mut rng, 0.5);
    let inst = Instance::new(dag, platform, exec);

    println!(
        "platform: 12 processors, granularity {:.2}\n",
        granularity(&inst.dag, &inst.platform, &inst.exec).unwrap()
    );

    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>9}",
        "algorithm", "M* (lb)", "M (ub)", "messages", "2-crash"
    );
    for alg in Algorithm::ALL {
        let mut tie = StdRng::seed_from_u64(5);
        let sched = schedule(&inst, epsilon, alg, &mut tie).expect("schedulable");
        validate(&inst, &sched).expect("valid");
        let scen = FailureScenario::at_time_zero([ProcId(0), ProcId(1)]);
        let sim = simulate(&inst, &sched, &scen);
        assert!(sim.completed());
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>10} {:>9.1}",
            alg.name(),
            sched.latency_lower_bound(),
            sched.latency_upper_bound(),
            sched.message_count(&inst.dag),
            sim.latency,
        );
    }

    println!(
        "\nMC-FTSA ships ~{}x fewer messages than FTSA (e(ε+1) vs e(ε+1)²).",
        epsilon + 1
    );
}
