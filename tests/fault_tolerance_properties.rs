//! Property-based integration tests of the paper's theorems:
//! Proposition 4.1 (distinct placement), Proposition 4.2 (`M* ≤ L ≤ M`),
//! Theorem 4.1 (validity under ≤ ε failures), and the DES ≡ replay
//! equivalence, over randomly drawn instances, ε values and scenarios.

use ftsched::prelude::*;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn make_instance(seed: u64, procs: usize, tasks: usize, granularity: f64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    paper_instance(
        &mut rng,
        &PaperInstanceConfig {
            tasks_lo: tasks,
            tasks_hi: tasks,
            procs,
            granularity,
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ftsa_tolerates_any_epsilon_failures(
        seed in 0u64..5_000,
        procs in 3usize..10,
        tasks in 10usize..60,
        eps_raw in 0usize..4,
        g in 0.2f64..2.0,
    ) {
        let eps = eps_raw.min(procs - 1);
        let inst = make_instance(seed, procs, tasks, g);
        let mut tie = StdRng::seed_from_u64(seed ^ 0xF00D);
        let sched = schedule(&inst, eps, Algorithm::Ftsa, &mut tie).unwrap();
        validate(&inst, &sched).map_err(|e| TestCaseError::fail(e.to_string()))?;

        // Proposition 4.1: primaries on distinct processors.
        for t in inst.dag.tasks() {
            let procs_used: std::collections::HashSet<_> =
                sched.replicas_of(t)[..eps + 1].iter().map(|r| r.proc).collect();
            prop_assert_eq!(procs_used.len(), eps + 1);
        }

        // Theorem 4.1 + Proposition 4.2 under a random ε-failure pattern.
        let mut frng = StdRng::seed_from_u64(seed ^ 0xFA11);
        let scen = FailureScenario::uniform(&mut frng, procs, eps);
        let sim = simulate(&inst, &sched, &scen);
        prop_assert!(sim.completed());
        prop_assert!(sim.latency >= sched.latency_lower_bound() - 1e-6);
        prop_assert!(sim.latency <= sched.latency_upper_bound() + 1e-6);
    }

    #[test]
    fn mc_ftsa_rerouted_tolerates_failures(
        seed in 0u64..5_000,
        procs in 3usize..10,
        tasks in 10usize..60,
        eps_raw in 1usize..4,
    ) {
        let eps = eps_raw.min(procs - 1);
        let inst = make_instance(seed, procs, tasks, 1.0);
        let mut tie = StdRng::seed_from_u64(seed);
        let sched = schedule(&inst, eps, Algorithm::McFtsaGreedy, &mut tie).unwrap();
        validate(&inst, &sched).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut frng = StdRng::seed_from_u64(seed ^ 0xFA17);
        let scen = FailureScenario::uniform(&mut frng, procs, eps);
        let sim = simulate(&inst, &sched, &scen);
        prop_assert!(sim.completed());
        prop_assert!(sim.latency.is_finite());
    }

    #[test]
    fn des_equals_replay(
        seed in 0u64..5_000,
        procs in 3usize..8,
        eps_raw in 0usize..3,
    ) {
        let eps = eps_raw.min(procs - 1);
        let inst = make_instance(seed, procs, 40, 0.8);
        for alg in [Algorithm::Ftsa, Algorithm::McFtsaGreedy] {
            let mut tie = StdRng::seed_from_u64(seed);
            let sched = schedule(&inst, eps, alg, &mut tie).unwrap();
            let mut frng = StdRng::seed_from_u64(seed ^ 0xD15C);
            let scen = FailureScenario::uniform(&mut frng, procs, eps);
            let a = simulate(&inst, &sched, &scen);
            let b = replay(&inst, &sched, &scen);
            prop_assert!((a.latency - b.latency).abs() < 1e-9);
            prop_assert_eq!(a.completed(), b.completed);
        }
    }

    #[test]
    fn ftbar_respects_bounds_too(
        seed in 0u64..2_000,
        procs in 3usize..8,
        eps_raw in 0usize..3,
    ) {
        let eps = eps_raw.min(procs - 1);
        let inst = make_instance(seed, procs, 30, 1.2);
        let mut tie = StdRng::seed_from_u64(seed);
        let sched = schedule(&inst, eps, Algorithm::Ftbar, &mut tie).unwrap();
        validate(&inst, &sched).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut frng = StdRng::seed_from_u64(seed ^ 0xFBA2);
        let scen = FailureScenario::uniform(&mut frng, procs, eps);
        let sim = simulate(&inst, &sched, &scen);
        prop_assert!(sim.completed());
        prop_assert!(sim.latency <= sched.latency_upper_bound() + 1e-6);
    }

    #[test]
    fn bounds_scale_with_epsilon_monotonic_guarantee(
        seed in 0u64..2_000,
        procs in 4usize..10,
    ) {
        // The guaranteed latency M can only grow (weakly, modulo heuristic
        // noise we tolerate at 1%) as ε increases — the price of fault
        // tolerance the paper's figures illustrate.
        let inst = make_instance(seed, procs, 40, 1.0);
        let mut prev = 0.0f64;
        for eps in 0..procs.min(4) {
            let mut tie = StdRng::seed_from_u64(seed);
            let sched = schedule(&inst, eps, Algorithm::Ftsa, &mut tie).unwrap();
            let m = sched.latency_upper_bound();
            prop_assert!(m >= prev * 0.99, "M collapsed when ε grew");
            prev = m;
        }
    }
}
