//! Counting-allocator regression suite: the zero-allocation steady-state
//! contract of the scheduler workspace and the Monte-Carlo crash
//! campaigns, pinned at the allocator boundary.
//!
//! A wrapping `#[global_allocator]` counts every `alloc` / `realloc` /
//! `alloc_zeroed` call in this test binary. Each test warms the relevant
//! workspace (first runs are allowed — and expected — to size the
//! buffers), then asserts that the *steady state* performs exactly zero
//! heap allocations:
//!
//! * repeated `schedule_into` runs over one `ScheduleWorkspace`, for
//!   every pipeline configuration — the bottleneck matcher included,
//!   now that its binary-search scratch lives in the workspace;
//! * a full Monte-Carlo crash campaign through
//!   `simulate_replication_outcomes_into` after an identical warm-up
//!   campaign — i.e. every replication after the first allocates
//!   nothing.
//!
//! The binary is **harness-free** (`harness = false`) and runs every
//! check on the one main thread — no rayon pool, no libtest threads —
//! so a counted allocation is always a real regression in the scheduler
//! or simulator hot path, not harness noise (see `main` for the flake
//! this design retires).

use experiments::campaign::{
    evaluate_cell_into, instance_for_cell, CampaignSpec, CellContext, CellCoord, CellPlan,
    LayeredRange, MeasurePlan, PlatformSpec, Seeding, SeriesKey, WorkloadSpec,
};
use ftsched::prelude::*;
use ftsched_core::{schedule_into, ScheduleWorkspace};
use platform::{FailureModel, UniformFailures};
use rand::{rngs::StdRng, SeedableRng};
use simulator::crash::{simulate_replication_outcomes_into, CrashWorkspace, ReplicationOutcome};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the system allocator plus a relaxed
// counter bump; no layout or pointer is altered.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn test_instance() -> Instance {
    let mut rng = StdRng::seed_from_u64(0xA110C);
    paper_instance(&mut rng, &PaperInstanceConfig::default())
}

/// Every pipeline configuration is covered by the zero-allocation
/// contract — including the bottleneck selector (`mc-ftsa-bn`), whose
/// binary-search and Hopcroft–Karp scratch is routed through the
/// workspace like everything else.
fn zero_alloc_algorithms() -> impl Iterator<Item = Algorithm> {
    Algorithm::ALL.into_iter()
}

/// One harness-free `main` for the whole contract: the allocation
/// counter is process-global, so *any* other thread allocating while a
/// measurement window is open fails the zero assert spuriously. That
/// rules out libtest itself, not just sibling tests: its main thread
/// lazily allocates channel-parking state the first time it blocks
/// waiting for the test thread, and whether that lands inside a window
/// is a timing race (observed as a rare "Ftsa eps=0: 2 heap
/// allocations" flake). `harness = false` runs everything on the one
/// main thread, so a counted allocation is always a real regression in
/// the scheduler or simulator hot path.
fn main() {
    steady_state_schedule_reuse_allocates_nothing();
    pressure_rerun_dirty_tracking_allocates_nothing();
    heap_family_selection_allocates_nothing();
    monte_carlo_replications_after_first_allocate_nothing();
    matched_campaign_after_first_allocates_nothing();
    campaign_cell_loop_allocates_nothing();
    streaming_arrivals_after_warm_allocate_nothing();
    wal_append_allocates_nothing();
    println!("alloc_counter: zero-allocation steady-state contracts hold");
}

fn wal_append_allocates_nothing() {
    // WAL checkpointing rides the campaign hot path (one append per
    // group, fsync included) — frame encoding must go through the
    // writer's reusable scratch buffer, not fresh heap. Warm appends
    // size the buffer; steady-state appends of same-sized payloads then
    // allocate exactly nothing.
    use experiments::store::{wal, WalWriter};

    let path = std::env::temp_dir().join(format!("ftsched_alloc_wal_{}", std::process::id()));
    let payload = [0x5Au8; 512];
    let mut writer = WalWriter::create(&path).expect("create WAL");
    writer.append(&payload).expect("warm append");
    writer.append(&payload).expect("warm append");

    let before = allocations();
    for _ in 0..8 {
        writer.append(&payload).expect("steady-state append");
    }
    let counted = allocations() - before;
    assert_eq!(
        counted, 0,
        "steady-state WAL appends performed {counted} heap allocations \
         across 8 checkpoints (contract: zero)"
    );

    // The measured frames are real: all ten appends replay.
    drop(writer);
    let contents = wal::read(&path).expect("read WAL");
    assert_eq!(contents.groups.len(), 10);
    assert!(!contents.truncated_tail);
    let _ = std::fs::remove_file(&path);
}

fn pressure_rerun_dirty_tracking_allocates_nothing() {
    // The incremental schedule-pressure state (cached arrival rows,
    // σ-sets, stale flags, pending/dups scratch) must be sized by the
    // warm-up and then reused — including when ε, and therefore the
    // σ-set stride of the cache, alternates between re-runs over one
    // workspace. Covers every pressure-driven configuration.
    let inst = test_instance();
    for alg in [
        Algorithm::Ftbar,
        Algorithm::FtsaPressure,
        Algorithm::FtbarMatched,
    ] {
        let mut ws = ScheduleWorkspace::new();
        let mut reference = f64::NAN;
        for _ in 0..2 {
            for eps in [0usize, 2] {
                let mut rng = StdRng::seed_from_u64(11);
                reference = schedule_into(&inst, eps, alg, &mut rng, &mut ws)
                    .unwrap()
                    .latency_lower_bound();
            }
        }

        let before = allocations();
        let mut latency = f64::NAN;
        for _ in 0..4 {
            for eps in [0usize, 2] {
                let mut rng = StdRng::seed_from_u64(11);
                latency = schedule_into(&inst, eps, alg, &mut rng, &mut ws)
                    .unwrap()
                    .latency_lower_bound();
            }
        }
        let counted = allocations() - before;
        assert_eq!(
            counted, 0,
            "{alg:?}: alternating-ε pressure re-runs performed {counted} \
             heap allocations (contract: zero)"
        );
        assert_eq!(latency.to_bits(), reference.to_bits());
    }
}

fn heap_family_selection_allocates_nothing() {
    // The heap-driven pressure selection's whole family machinery —
    // clean heap + guard queues, the hot vec, the fully-ready-dominated
    // heap, the lazy static/per-processor heaps, tombstone compaction
    // and the per-step requeue/popped scratch — must be sized by the
    // warm-up and then reused. A 1500-task layered instance is large
    // enough that every family fills, compaction triggers and the hot ↔
    // lazy ↔ FRD migrations all fire; ε alternation changes the σ-set
    // stride of every cache between runs.
    let mut gen_rng = StdRng::seed_from_u64(0x4EA9);
    let inst = paper_instance(
        &mut gen_rng,
        &PaperInstanceConfig {
            tasks_lo: 1500,
            tasks_hi: 1500,
            procs: 16,
            ..Default::default()
        },
    );
    let mut ws = ScheduleWorkspace::new();
    let mut reference = f64::NAN;
    for _ in 0..2 {
        for eps in [1usize, 3] {
            let mut rng = StdRng::seed_from_u64(0x8EA9);
            reference = schedule_into(&inst, eps, Algorithm::Ftbar, &mut rng, &mut ws)
                .unwrap()
                .latency_lower_bound();
        }
    }

    let before = allocations();
    let mut latency = f64::NAN;
    for _ in 0..3 {
        for eps in [1usize, 3] {
            let mut rng = StdRng::seed_from_u64(0x8EA9);
            latency = schedule_into(&inst, eps, Algorithm::Ftbar, &mut rng, &mut ws)
                .unwrap()
                .latency_lower_bound();
        }
    }
    let counted = allocations() - before;
    assert_eq!(
        counted, 0,
        "heap-family pressure selection performed {counted} heap \
         allocations at v=1500 steady state (contract: zero)"
    );
    assert_eq!(latency.to_bits(), reference.to_bits());
}

fn streaming_arrivals_after_warm_allocate_nothing() {
    // The streaming driver's per-arrival path — occupancy-floored
    // scheduling via `schedule_onto`, crash replay from the actual
    // floors, interval folds into both timelines — must allocate
    // nothing once the `StreamWorkspace` and output buffer are warm.
    // Instance generation and arrival sampling happen outside the
    // measured window (they are per-stream setup, not per-arrival work).
    use platform::ProcId;
    use simulator::crash::FallbackPolicy;
    use simulator::streaming::{run_stream_into, DagOutcome, StreamWorkspace};

    let mut rng = StdRng::seed_from_u64(0x57AEA);
    let insts: Vec<Instance> = (0..6)
        .map(|_| {
            paper_instance(
                &mut rng,
                &PaperInstanceConfig {
                    tasks_lo: 25,
                    tasks_hi: 35,
                    procs: 8,
                    ..Default::default()
                },
            )
        })
        .collect();
    let arrivals: Vec<f64> = (0..6).map(|i| i as f64 * 40.0).collect();
    // A positive-time crash exercises the mid-stream failure path.
    let scenario = platform::FailureScenario::new(vec![(ProcId(3), 90.0)]);
    let mut ws = StreamWorkspace::new();
    let mut out: Vec<DagOutcome> = Vec::new();

    for _ in 0..2 {
        run_stream_into(
            &insts,
            &arrivals,
            1,
            Algorithm::Ftsa,
            &scenario,
            FallbackPolicy::Strict,
            0xBEE5,
            &mut ws,
            &mut out,
        )
        .unwrap();
    }
    let reference = out.clone();

    let before = allocations();
    for _ in 0..5 {
        run_stream_into(
            &insts,
            &arrivals,
            1,
            Algorithm::Ftsa,
            &scenario,
            FallbackPolicy::Strict,
            0xBEE5,
            &mut ws,
            &mut out,
        )
        .unwrap();
    }
    let counted = allocations() - before;
    assert_eq!(
        counted, 0,
        "steady-state streaming arrivals performed {counted} heap \
         allocations across 5 stream runs (contract: zero)"
    );
    assert_eq!(out, reference, "reuse must not change the stream outcomes");
    assert!(out.iter().all(|o| o.completed));
}

fn steady_state_schedule_reuse_allocates_nothing() {
    let inst = test_instance();
    for alg in zero_alloc_algorithms() {
        let mut ws = ScheduleWorkspace::new();
        for eps in [0usize, 2] {
            // Warm-up: the first run sizes every buffer; the second
            // run exists only to shake out any one-time lazy growth.
            let mut reference = f64::NAN;
            for _ in 0..2 {
                let mut rng = StdRng::seed_from_u64(7);
                reference = schedule_into(&inst, eps, alg, &mut rng, &mut ws)
                    .unwrap()
                    .latency_lower_bound();
            }

            let before = allocations();
            let mut latency = f64::NAN;
            for _ in 0..5 {
                let mut rng = StdRng::seed_from_u64(7);
                latency = schedule_into(&inst, eps, alg, &mut rng, &mut ws)
                    .unwrap()
                    .latency_lower_bound();
            }
            let counted = allocations() - before;
            assert_eq!(
                counted, 0,
                "{alg:?} eps={eps}: steady-state schedule_into performed \
                 {counted} heap allocations (contract: zero)"
            );
            // The measured runs did real work and reproduced the warm-up
            // schedule bit for bit.
            assert_eq!(latency.to_bits(), reference.to_bits());
        }
    }
}

fn monte_carlo_replications_after_first_allocate_nothing() {
    let inst = test_instance();
    let mut ws = ScheduleWorkspace::new();
    let sched = schedule_into(
        &inst,
        2,
        Algorithm::Ftsa,
        &mut StdRng::seed_from_u64(3),
        &mut ws,
    )
    .unwrap()
    .clone();

    const REPS: usize = 50;
    let mut crash_ws = CrashWorkspace::new();
    let mut out: Vec<ReplicationOutcome> = Vec::new();
    // Warm-up campaign: sizes the replay state for the largest scenario
    // and the output buffer for REPS outcomes.
    simulate_replication_outcomes_into(&inst, &sched, 2, REPS, 0xCAFE, &mut out, &mut crash_ws);
    let warm: Vec<ReplicationOutcome> = out.clone();

    let before = allocations();
    simulate_replication_outcomes_into(&inst, &sched, 2, REPS, 0xCAFE, &mut out, &mut crash_ws);
    let counted = allocations() - before;
    assert_eq!(
        counted, 0,
        "steady-state Monte-Carlo campaign performed {counted} heap \
         allocations across {REPS} replications (contract: zero)"
    );
    assert_eq!(out, warm, "reuse must not change the outcomes");
    assert!(out.iter().all(ReplicationOutcome::completed));
}

fn campaign_cell_loop_allocates_nothing() {
    // The campaign executor's per-cell hot path — every schedule via
    // `schedule_into`, every crash replay via `simulate_outcome_into`,
    // failure scenarios refilled in place — must allocate nothing once
    // the worker's `CellContext` is warm. A full figure-style plan
    // (bounds + fault-free baseline + overhead + two failure models +
    // messages) over the three paper algorithms is evaluated repeatedly
    // on one instance with a reused output buffer.
    let spec = CampaignSpec {
        id: "alloc".into(),
        workloads: vec![WorkloadSpec::PaperLayered(LayeredRange {
            tasks_lo: 40,
            tasks_hi: 60,
        })],
        platforms: vec![PlatformSpec::paper(8, 1.0)],
        epsilons: vec![2],
        algorithms: vec![Algorithm::Ftsa, Algorithm::McFtsaGreedy, Algorithm::Ftbar],
        extra_algorithms: vec![],
        repetitions: 1,
        seed: 0xA110C,
        seeding: Seeding::Indexed,
        arrivals: None,
        measures: MeasurePlan {
            bounds: true,
            normalize: true,
            fault_free: vec![Algorithm::Ftsa],
            overhead: true,
            failures: vec![
                FailureModel::Epsilon,
                FailureModel::Uniform(UniformFailures { crashes: 0 }),
            ],
            messages: vec![Algorithm::Ftsa, Algorithm::McFtsaGreedy],
            ..Default::default()
        },
    };
    spec.validate().unwrap();
    let plan = CellPlan::new(&spec);
    let coord = CellCoord {
        workload: 0,
        platform: 0,
        eps: 0,
        rep: 0,
    };
    let inst = instance_for_cell(&spec, &coord);
    let mut ctx = CellContext::new();
    let mut out: Vec<(SeriesKey, f64)> = Vec::new();

    // Warm-up: two cells size every workspace and the output buffer.
    for _ in 0..2 {
        evaluate_cell_into(&spec, &plan, &coord, &inst, &mut ctx, &mut out).unwrap();
    }
    let reference = out.clone();

    let before = allocations();
    for _ in 0..5 {
        evaluate_cell_into(&spec, &plan, &coord, &inst, &mut ctx, &mut out).unwrap();
    }
    let counted = allocations() - before;
    assert_eq!(
        counted, 0,
        "steady-state campaign cell loop performed {counted} heap \
         allocations (contract: zero)"
    );
    assert_eq!(out, reference, "reuse must not change the cell series");
    assert!(!out.is_empty());
}

fn matched_campaign_after_first_allocates_nothing() {
    // Same contract for a matched (MC-FTSA greedy) schedule: the strict
    // and rerouted bookkeeping paths share the flat workspace.
    let inst = test_instance();
    let mut ws = ScheduleWorkspace::new();
    let sched = schedule_into(
        &inst,
        1,
        Algorithm::McFtsaGreedy,
        &mut StdRng::seed_from_u64(4),
        &mut ws,
    )
    .unwrap()
    .clone();

    const REPS: usize = 30;
    let mut crash_ws = CrashWorkspace::new();
    let mut out: Vec<ReplicationOutcome> = Vec::new();
    simulate_replication_outcomes_into(&inst, &sched, 1, REPS, 0xF00D, &mut out, &mut crash_ws);

    let before = allocations();
    simulate_replication_outcomes_into(&inst, &sched, 1, REPS, 0xF00D, &mut out, &mut crash_ws);
    assert_eq!(
        allocations() - before,
        0,
        "matched-schedule Monte-Carlo steady state must not allocate"
    );
}
