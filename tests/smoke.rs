//! Workspace-wiring smoke test: every algorithm schedules a small seeded
//! instance end-to-end through the public facade, validates structurally,
//! and survives crash simulation — the minimal "the workspace is wired
//! correctly" guarantee this repo's build system PR established.

use ftsched::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn small_instance(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    paper_instance(
        &mut rng,
        &PaperInstanceConfig {
            tasks_lo: 25,
            tasks_hi: 25,
            procs: 6,
            granularity: 1.0,
            ..Default::default()
        },
    )
}

#[test]
fn all_algorithms_schedule_validate_and_simulate() {
    let inst = small_instance(2024);
    let eps = 2;
    for alg in Algorithm::ALL {
        let mut rng = StdRng::seed_from_u64(7);
        let sched = schedule(&inst, eps, alg, &mut rng)
            .unwrap_or_else(|e| panic!("{alg:?} failed to schedule: {e}"));
        validate(&inst, &sched).unwrap_or_else(|e| panic!("{alg:?} invalid: {e}"));

        // Theorem 4.1's replica-count guarantee: ε + 1 replicas per task
        // on pairwise distinct processors (FTBAR may append duplicates).
        for t in inst.dag.tasks() {
            let primaries = &sched.replicas_of(t)[..eps + 1];
            let distinct: std::collections::HashSet<_> = primaries.iter().map(|r| r.proc).collect();
            assert_eq!(
                distinct.len(),
                eps + 1,
                "{alg:?}: clustered replicas for {t}"
            );
        }

        // Bounds sanity (eq. 2 and eq. 4) and crash survival.
        assert!(sched.latency_lower_bound() <= sched.latency_upper_bound() + 1e-9);
        let mut frng = StdRng::seed_from_u64(99);
        let scen = FailureScenario::uniform(&mut frng, inst.num_procs(), eps);
        let sim = simulate(&inst, &sched, &scen);
        assert!(
            sim.completed(),
            "{alg:?}: schedule did not survive ε failures"
        );
        assert!(sim.latency <= sched.latency_upper_bound() + 1e-6);
    }
}

#[test]
fn facade_reexports_compose() {
    // The facade's module aliases and the prelude expose the same types.
    let mut rng = StdRng::seed_from_u64(1);
    let inst = paper_instance(&mut rng, &PaperInstanceConfig::default());
    let s: ftsched::core::Schedule = schedule(&inst, 1, Algorithm::Ftsa, &mut rng).unwrap();
    let stats = schedule_stats(&inst, &s);
    assert_eq!(stats.replicas, inst.num_tasks() * 2);
}
