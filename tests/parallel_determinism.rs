//! Sequential-equivalence suite for every parallelized sweep.
//!
//! The workspace's parallelism contract: a sweep fanned out over the
//! rayon shim returns **bit-identical** output at `threads = 1`, `2` and
//! `available_parallelism()`, and reruns with the same seed are
//! identical across runs. This suite enforces the contract end to end
//! for the figure cells, the Table 1 rows, the Monte-Carlo
//! crash-simulation replications and the reliability estimator. (The
//! companion wall-clock speedup measurement lives in its own binary,
//! `tests/parallel_speedup.rs`, so nothing competes with its timing.)
//!
//! The CI thread matrix reruns this suite under `FTSCHED_THREADS=1` and
//! `FTSCHED_THREADS=4` so both the inline sequential path and the
//! work-stealing path are exercised on every push.

use experiments::figures::{run_figure_with_threads, FigureConfig};
use experiments::parallel::{default_threads, parallel_map};
use experiments::table1::{run_table1_with_threads, Table1Config};
use ftsched::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simulator::reliability::survival_probability_monte_carlo_par;
use simulator::simulate_replications;

/// Thread counts every sweep must agree across: sequential, minimal
/// parallelism, whatever this machine offers, and the CI matrix value.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![
        1,
        2,
        std::thread::available_parallelism().map_or(4, |n| n.get()),
        default_threads(),
    ];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn pinned<R>(threads: usize, op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool handle")
        .install(op)
}

fn tiny_figure() -> FigureConfig {
    FigureConfig {
        granularities: vec![0.4, 1.2],
        repetitions: 4,
        ..FigureConfig::comparison("det", 1, 4)
    }
}

/// Exact (bitwise) equality of two figure results.
fn assert_figures_identical(
    a: &experiments::figures::FigureResult,
    b: &experiments::figures::FigureResult,
) {
    assert_eq!(a.points.len(), b.points.len());
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa.granularity.to_bits(), pb.granularity.to_bits());
        assert_eq!(
            pa.series.keys().collect::<Vec<_>>(),
            pb.series.keys().collect::<Vec<_>>()
        );
        for (name, va) in &pa.series {
            let vb = pb.series[name];
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "series `{name}` at g={} differs: {va} vs {vb}",
                pa.granularity
            );
        }
    }
}

#[test]
fn figure_cells_identical_across_thread_counts() {
    let cfg = tiny_figure();
    let reference = run_figure_with_threads(&cfg, 1).unwrap();
    for threads in thread_counts() {
        let run = run_figure_with_threads(&cfg, threads).unwrap();
        assert_figures_identical(&reference, &run);
    }
}

#[test]
fn figure_rerun_with_same_seed_is_identical() {
    let cfg = tiny_figure();
    let a = run_figure_with_threads(&cfg, 2).unwrap();
    let b = run_figure_with_threads(&cfg, 2).unwrap();
    assert_figures_identical(&a, &b);
}

#[test]
fn table1_rows_identical_across_thread_counts() {
    let cfg = Table1Config {
        sizes: vec![60, 100, 140],
        procs: 10,
        epsilon: 1,
        ftbar_size_cap: 140,
        extra_algorithms: vec![],
        seed: 0xDE7,
    };
    let reference = run_table1_with_threads(&cfg, 1).unwrap();
    for threads in thread_counts() {
        let rows = run_table1_with_threads(&cfg, threads).unwrap();
        assert_eq!(rows.len(), reference.len());
        for (a, b) in reference.iter().zip(&rows) {
            // Wall-clock columns are measurements, not outputs; every
            // deterministic column must match bitwise.
            assert_eq!(a.tasks, b.tasks);
            assert_eq!(a.ftsa_latency.to_bits(), b.ftsa_latency.to_bits());
            assert_eq!(a.mc_ftsa_latency.to_bits(), b.mc_ftsa_latency.to_bits());
            assert_eq!(
                a.ftbar_latency.map(f64::to_bits),
                b.ftbar_latency.map(f64::to_bits)
            );
        }
    }
}

fn determinism_instance() -> (Instance, Schedule) {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    let inst = paper_instance(&mut rng, &PaperInstanceConfig::default());
    let sched = schedule(&inst, 2, Algorithm::Ftsa, &mut rng).expect("schedulable");
    (inst, sched)
}

#[test]
fn crash_replications_identical_across_thread_counts() {
    let (inst, sched) = determinism_instance();
    let reference = pinned(1, || simulate_replications(&inst, &sched, 2, 24, 0xC4A5));
    for threads in thread_counts() {
        let sims = pinned(threads, || {
            simulate_replications(&inst, &sched, 2, 24, 0xC4A5)
        });
        assert_eq!(sims.len(), reference.len());
        for (a, b) in reference.iter().zip(&sims) {
            assert_eq!(a.latency.to_bits(), b.latency.to_bits());
            assert_eq!(a.status, b.status);
            assert_eq!(a.times, b.times);
        }
    }
}

#[test]
fn crash_replications_rerun_identical() {
    let (inst, sched) = determinism_instance();
    let a = pinned(2, || simulate_replications(&inst, &sched, 1, 16, 99));
    let b = pinned(2, || simulate_replications(&inst, &sched, 1, 16, 99));
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.latency.to_bits(), y.latency.to_bits());
    }
}

#[test]
fn reliability_estimate_identical_across_thread_counts() {
    let (inst, sched) = determinism_instance();
    let reference = pinned(1, || {
        survival_probability_monte_carlo_par(&inst, &sched, 0.2, 2000, 0x11)
    });
    for threads in thread_counts() {
        let mc = pinned(threads, || {
            survival_probability_monte_carlo_par(&inst, &sched, 0.2, 2000, 0x11)
        });
        assert_eq!(reference.survival.to_bits(), mc.survival.to_bits());
        assert_eq!(
            reference.expected_latency.to_bits(),
            mc.expected_latency.to_bits()
        );
        assert_eq!(reference.samples, mc.samples);
    }
}

#[test]
fn parallel_map_keeps_index_derived_seed_contract() {
    // The contract every sweep builds on: f(i) may only depend on i.
    let cell = |i: usize| {
        let mut rng = StdRng::seed_from_u64(simulator::replication_seed(0xABCD, i as u64));
        let inst = paper_instance(
            &mut rng,
            &PaperInstanceConfig {
                tasks_lo: 20,
                tasks_hi: 30,
                procs: 5,
                ..Default::default()
            },
        );
        let sched = schedule(&inst, 1, Algorithm::Ftsa, &mut rng).expect("schedulable");
        sched.latency_lower_bound()
    };
    let reference = parallel_map(24, 1, cell);
    for threads in thread_counts() {
        let got = parallel_map(24, threads, cell);
        let same = reference
            .iter()
            .zip(&got)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "parallel_map diverged at {threads} threads");
    }
}

#[test]
fn campaign_json_identical_across_thread_counts() {
    // The campaign engine end to end — enumeration, per-worker-state
    // executor, streaming aggregation, JSON emission — must be **byte**
    // identical at every thread count (this is what lets the CI matrix
    // `cmp` the CLI's emitted files across FTSCHED_THREADS values). The
    // ci-smoke preset carries no timing measures, so every emitted
    // number is deterministic.
    let spec = experiments::campaign::presets::preset("ci-smoke", Some(2)).expect("preset");
    let reference = experiments::output::campaign_to_json(
        &experiments::campaign::run_campaign_with_threads(&spec, 1).expect("valid spec"),
    );
    assert!(reference.contains("ci-smoke"));
    for threads in thread_counts() {
        let run = experiments::output::campaign_to_json(
            &experiments::campaign::run_campaign_with_threads(&spec, threads).expect("valid spec"),
        );
        assert_eq!(
            run, reference,
            "campaign JSON diverged at {threads} threads"
        );
    }
    // Rerun stability at a fixed thread count.
    let again = experiments::output::campaign_to_json(
        &experiments::campaign::run_campaign_with_threads(&spec, 2).expect("valid spec"),
    );
    assert_eq!(again, reference);
}

#[test]
fn online_campaign_json_identical_across_thread_counts() {
    // The streaming (arrival-axis) executor path: stream cells carry
    // per-worker StreamWorkspaces and two occupancy timelines each, and
    // the per-DAG RNGs are derived from the cell seed — so the emitted
    // JSON must stay byte-identical at every thread count, exactly like
    // the offline ci-smoke grid. CI `cmp`s the CLI outputs of this
    // preset across FTSCHED_THREADS values.
    let spec = experiments::campaign::presets::preset("online", Some(2)).expect("preset");
    assert!(spec.arrivals.is_some(), "online preset must carry arrivals");
    let reference = experiments::output::campaign_to_json(
        &experiments::campaign::run_campaign_with_threads(&spec, 1).expect("valid spec"),
    );
    assert!(reference.contains("Stream Response"));
    for threads in thread_counts() {
        let run = experiments::output::campaign_to_json(
            &experiments::campaign::run_campaign_with_threads(&spec, threads).expect("valid spec"),
        );
        assert_eq!(
            run, reference,
            "online campaign JSON diverged at {threads} threads"
        );
    }
}

#[test]
fn parallel_map_with_keeps_the_determinism_contract() {
    // Per-worker state (the campaign executor's workspace threading)
    // must be invisible in the output: bit-identical to the stateless
    // map at every worker count, even though chunks share mutable state.
    let cell = |i: usize| {
        let mut rng = StdRng::seed_from_u64(simulator::replication_seed(0x5EED, i as u64));
        let inst = paper_instance(
            &mut rng,
            &PaperInstanceConfig {
                tasks_lo: 15,
                tasks_hi: 25,
                procs: 5,
                ..Default::default()
            },
        );
        schedule(&inst, 1, Algorithm::Ftsa, &mut rng)
            .expect("schedulable")
            .latency_lower_bound()
    };
    let reference = experiments::parallel::parallel_map(20, 1, cell);
    for threads in thread_counts() {
        let got = experiments::parallel::parallel_map_with(
            20,
            threads,
            ftsched_core::ScheduleWorkspace::new,
            |ws, i| {
                // Exercise the state so reuse actually happens, without
                // letting it affect the returned value.
                let mut rng = StdRng::seed_from_u64(simulator::replication_seed(0x5EED, i as u64));
                let inst = paper_instance(
                    &mut rng,
                    &PaperInstanceConfig {
                        tasks_lo: 15,
                        tasks_hi: 25,
                        procs: 5,
                        ..Default::default()
                    },
                );
                ftsched_core::schedule_into(&inst, 1, Algorithm::Ftsa, &mut rng, ws)
                    .expect("schedulable")
                    .latency_lower_bound()
            },
        );
        let same = reference
            .iter()
            .zip(&got)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "parallel_map_with diverged at {threads} threads");
    }
}

// The wall-clock speedup measurement lives in its own test binary
// (`tests/parallel_speedup.rs`) so no sibling test competes for cores
// while it times the sweep.
