//! Cross-algorithm comparison tests: the qualitative claims of
//! Section 6 must hold on averaged random instances.

use ftsched::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn mean_over_instances(
    n: usize,
    granularity: f64,
    eps: usize,
    f: impl Fn(&Instance, u64) -> f64,
) -> f64 {
    let mut acc = 0.0;
    for seed in 0..n as u64 {
        let mut rng = StdRng::seed_from_u64(seed * 31 + eps as u64);
        let inst = paper_instance(
            &mut rng,
            &PaperInstanceConfig {
                granularity,
                ..Default::default()
            },
        );
        acc += f(&inst, seed);
    }
    acc / n as f64
}

#[test]
fn ftsa_beats_ftbar_on_average_lower_bound() {
    // "FTSA always outperforms FTBAR in terms of lower bound" — we check
    // the averaged claim on coarse-grain instances where the paper's gap
    // is widest.
    let n = 8;
    let diff = mean_over_instances(n, 1.6, 1, |inst, seed| {
        let f = schedule(inst, 1, Algorithm::Ftsa, &mut StdRng::seed_from_u64(seed))
            .unwrap()
            .latency_lower_bound();
        let b = schedule(inst, 1, Algorithm::Ftbar, &mut StdRng::seed_from_u64(seed))
            .unwrap()
            .latency_lower_bound();
        b - f
    });
    assert!(
        diff > 0.0,
        "on average FTBAR's lower bound should exceed FTSA's (diff = {diff})"
    );
}

#[test]
fn mc_ftsa_upper_bound_hugs_its_lower_bound() {
    // Paper: "its upper bound is close to the lower bound since we keep
    // only the best communication edges" — for MC-FTSA the per-replica
    // times are deterministic, so the gap is much smaller than FTSA's.
    let ratio = mean_over_instances(6, 1.0, 2, |inst, seed| {
        let mc = schedule(
            inst,
            2,
            Algorithm::McFtsaGreedy,
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap();
        let f = schedule(inst, 2, Algorithm::Ftsa, &mut StdRng::seed_from_u64(seed)).unwrap();
        let gap_mc = mc.latency_upper_bound() - mc.latency_lower_bound();
        let gap_f = f.latency_upper_bound() - f.latency_lower_bound();
        gap_mc / gap_f.max(1e-9)
    });
    assert!(
        ratio < 0.6,
        "MC-FTSA's bound gap should be well under FTSA's (ratio = {ratio})"
    );
}

#[test]
fn replication_overhead_grows_with_epsilon() {
    // Figures 1c → 3c: overhead increases with the number of supported
    // failures.
    let overhead = |eps: usize| {
        mean_over_instances(6, 1.0, eps, |inst, seed| {
            let ft = schedule(inst, eps, Algorithm::Ftsa, &mut StdRng::seed_from_u64(seed))
                .unwrap()
                .latency_lower_bound();
            let ff = schedule(inst, 0, Algorithm::Ftsa, &mut StdRng::seed_from_u64(seed))
                .unwrap()
                .latency_lower_bound();
            (ft - ff) / ff
        })
    };
    let o1 = overhead(1);
    let o5 = overhead(5);
    assert!(
        o5 > o1,
        "tolerating 5 failures must cost more than tolerating 1 ({o1} vs {o5})"
    );
}

#[test]
fn bottleneck_selector_tightens_worst_edge() {
    // Per-step the bottleneck selector minimizes the worst completion;
    // end-to-end both must stay valid and close. Check validity plus a
    // loose mutual bound.
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed + 900);
        let inst = paper_instance(&mut rng, &PaperInstanceConfig::default());
        let g = schedule(
            &inst,
            2,
            Algorithm::McFtsaGreedy,
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap();
        let b = schedule(
            &inst,
            2,
            Algorithm::McFtsaBottleneck,
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap();
        validate(&inst, &g).unwrap();
        validate(&inst, &b).unwrap();
        let (lg, lb) = (g.latency_upper_bound(), b.latency_upper_bound());
        assert!(
            lb <= lg * 1.3 && lg <= lb * 1.3,
            "selectors diverged: {lg} vs {lb}"
        );
    }
}

#[test]
fn fault_free_variants_agree_with_epsilon_zero() {
    // The "fault free version (without replication)" in the figures is
    // exactly ε = 0 of each algorithm.
    let mut rng = StdRng::seed_from_u64(77);
    let inst = paper_instance(&mut rng, &PaperInstanceConfig::default());
    for alg in Algorithm::ALL {
        let s = schedule(&inst, 0, alg, &mut StdRng::seed_from_u64(3)).unwrap();
        let duplicating = alg.scheduler().placement
            == ftsched::core::pipeline::PlacementAxis::MinStart { duplicate: true };
        for t in inst.dag.tasks() {
            assert!(!s.replicas_of(t).is_empty());
            // ε = 0 ⇒ one primary replica (minimize-start-time placements
            // may add duplicates).
            if !duplicating {
                assert_eq!(s.replicas_of(t).len(), 1);
            }
        }
        let sim = simulate(&inst, &s, &FailureScenario::none());
        assert!(sim.completed());
    }
}
