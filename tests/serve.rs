//! Loopback integration tests for `experiments::serve`: real
//! `TcpStream`s against a bound server, covering the contract pillars —
//! response bytes equal the CLI emission at any shard count, duplicate
//! submissions share one run, malformed specs bounce with a 4xx while
//! the server stays live, and (with a data dir) runs survive a restart:
//! completed runs replay byte-identically, interrupted ones resume from
//! their WAL checkpoints bit-exactly.

use experiments::campaign::{presets, run_campaign_with_threads, CampaignSpec};
use experiments::output::campaign_to_json;
use experiments::serve::{rendered_group, spec_key, ServeConfig, Server};
use experiments::store::{key_hex, Store};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

/// Binds a server on an ephemeral loopback port, runs its accept loop
/// on a background thread, and returns the address to dial.
fn spawn_server(config: ServeConfig) -> SocketAddr {
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    thread::spawn(move || server.run());
    addr
}

struct Response {
    status: String,
    headers: Vec<(String, String)>,
    body: String,
    /// `;seq=` chunk-extension values, in arrival order (chunked only).
    seqs: Vec<u64>,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one raw request and reads to EOF (the server closes after each
/// response), de-chunking when the response is chunked.
fn request(addr: SocketAddr, raw: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read response");
    let text = String::from_utf8(bytes).expect("responses are UTF-8");

    let (head, payload) = text.split_once("\r\n\r\n").expect("header block");
    let mut lines = head.split("\r\n");
    let status = lines.next().expect("status line").to_string();
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();

    let chunked = headers
        .iter()
        .any(|(k, v)| k.eq_ignore_ascii_case("transfer-encoding") && v == "chunked");
    let (body, seqs) = if chunked {
        de_chunk(payload)
    } else {
        (payload.to_string(), Vec::new())
    };
    Response {
        status,
        headers,
        body,
        seqs,
    }
}

/// Minimal de-chunker that also records the `;seq=` extensions.
fn de_chunk(mut rest: &str) -> (String, Vec<u64>) {
    let mut body = String::new();
    let mut seqs = Vec::new();
    loop {
        let (size_line, after) = rest.split_once("\r\n").expect("chunk size line");
        let (size_hex, ext) = match size_line.split_once(';') {
            Some((s, e)) => (s, Some(e)),
            None => (size_line, None),
        };
        let size = usize::from_str_radix(size_hex.trim(), 16).expect("hex chunk size");
        if size == 0 {
            return (body, seqs);
        }
        if let Some(ext) = ext {
            let seq = ext
                .strip_prefix("seq=")
                .expect("seq extension")
                .parse::<u64>()
                .expect("numeric seq");
            seqs.push(seq);
        }
        body.push_str(&after[..size]);
        rest = after[size..].strip_prefix("\r\n").expect("chunk CRLF");
    }
}

fn post_campaign(addr: SocketAddr, body: &str) -> Response {
    request(
        addr,
        &format!(
            "POST /campaigns HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn smoke_spec() -> CampaignSpec {
    let mut spec = presets::preset("ci-smoke", Some(2)).expect("ci-smoke preset");
    // Keep the loopback grid small; the CI smoke step runs the full one.
    spec.id = "serve-loopback".into();
    spec
}

#[test]
fn response_bytes_equal_cli_emission_at_any_shard_count() {
    let spec = smoke_spec();
    let spec_json = spec.to_json().expect("spec serializes");
    // What `ftsched campaign --out DIR` writes for this spec.
    let reference = campaign_to_json(&run_campaign_with_threads(&spec, 1).expect("valid spec"));

    for threads in [1usize, 3] {
        let addr = spawn_server(ServeConfig {
            threads,
            ..ServeConfig::default()
        });
        let res = post_campaign(addr, &spec_json);
        assert_eq!(res.status, "HTTP/1.1 200 OK", "{}", res.body);
        assert_eq!(res.header("X-Campaign-Run"), Some("new"));
        assert_eq!(
            res.body, reference,
            "serve bytes diverge from the CLI emission at {threads} shard(s)"
        );
        // The chunk sequence numbers are gapless from 0.
        let expected: Vec<u64> = (0..res.seqs.len() as u64).collect();
        assert_eq!(res.seqs, expected);
        assert!(res.seqs.len() >= 2, "prefix + suffix at minimum");
    }
}

#[test]
fn concurrent_duplicate_submissions_share_one_run() {
    let addr = spawn_server(ServeConfig::default());
    let spec_json = smoke_spec().to_json().expect("spec serializes");

    let responses: Vec<Response> = thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| scope.spawn(|| post_campaign(addr, &spec_json)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let new_runs = responses
        .iter()
        .filter(|r| r.header("X-Campaign-Run") == Some("new"))
        .count();
    assert_eq!(new_runs, 1, "exactly one submission computes");
    for res in &responses {
        assert_eq!(res.status, "HTTP/1.1 200 OK", "{}", res.body);
        assert_eq!(res.body, responses[0].body, "duplicates replay the run");
    }

    // A later resubmission replays too, without recomputing.
    let replay = post_campaign(addr, &spec_json);
    assert_eq!(replay.header("X-Campaign-Run"), Some("existing"));
    assert_eq!(replay.body, responses[0].body);
}

#[test]
fn malformed_specs_bounce_and_the_server_stays_live() {
    let addr = spawn_server(ServeConfig::default());

    // Not JSON at all.
    let res = post_campaign(addr, "this is not a campaign");
    assert_eq!(res.status, "HTTP/1.1 400 Bad Request", "{}", res.body);

    // Valid JSON, decodes as a spec, fails validate() — the shape that
    // used to reach an executor panic.
    let mut unschedulable = smoke_spec();
    unschedulable.epsilons = vec![1000];
    let res = post_campaign(addr, &unschedulable.to_json().expect("serializes"));
    assert_eq!(res.status, "HTTP/1.1 400 Bad Request", "{}", res.body);
    assert!(res.body.contains("invalid spec"), "{}", res.body);

    // Protocol-level rejections.
    let res = request(
        addr,
        "POST /campaigns HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(res.status, "HTTP/1.1 411 Length Required");
    let res = request(addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(res.status, "HTTP/1.1 404 Not Found");
    let res = request(addr, "DELETE /campaigns HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(res.status, "HTTP/1.1 405 Method Not Allowed");

    // No worker died along the way: the server still answers.
    let res = request(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(res.status, "HTTP/1.1 200 OK");
    assert_eq!(res.body, "ok\n");
}

/// A fresh scratch data directory for one durable-server test.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftsched_serve_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn get_campaign(addr: SocketAddr, key: u64) -> Response {
    request(
        addr,
        &format!(
            "GET /campaigns/{} HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\n\r\n",
            key_hex(key)
        ),
    )
}

/// A durable run survives a server restart: the second bind recovers it
/// from the data dir alone and replays the exact bytes, to both the GET
/// endpoint and a resubmission.
#[test]
fn durable_runs_survive_a_restart() {
    let dir = scratch_dir("restart");
    let spec = smoke_spec();
    let spec_json = spec.to_json().expect("spec serializes");
    let key = spec_key(&spec);

    let addr = spawn_server(ServeConfig {
        threads: 2,
        data_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let first = post_campaign(addr, &spec_json);
    assert_eq!(first.status, "HTTP/1.1 200 OK", "{}", first.body);
    assert_eq!(first.header("X-Campaign-Run"), Some("new"));

    // "Restart": a second server over the same data dir, no shared
    // memory. (The first server's accept loop is idle from here on.)
    let addr2 = spawn_server(ServeConfig {
        threads: 2,
        data_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let replayed = get_campaign(addr2, key);
    assert_eq!(replayed.status, "HTTP/1.1 200 OK", "{}", replayed.body);
    assert_eq!(replayed.header("X-Campaign-Run"), Some("existing"));
    assert_eq!(replayed.body, first.body, "recovered bytes must be exact");

    let resubmitted = post_campaign(addr2, &spec_json);
    assert_eq!(resubmitted.header("X-Campaign-Run"), Some("existing"));
    assert_eq!(resubmitted.body, first.body);

    // The listing shows the recovered run as completed.
    let listing = request(
        addr2,
        "GET /campaigns HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(listing.status, "HTTP/1.1 200 OK");
    assert!(listing.body.contains(&key_hex(key)), "{}", listing.body);
    assert!(listing.body.contains("\"completed\""), "{}", listing.body);

    // Unknown and malformed keys 404 without disturbing anything.
    let missing = get_campaign(addr2, key ^ 1);
    assert_eq!(missing.status, "HTTP/1.1 404 Not Found");
    let bad = request(
        addr2,
        "GET /campaigns/nothex HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(bad.status, "HTTP/1.1 404 Not Found");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A run interrupted mid-stream (fabricated: a `running` record with a
/// partial WAL, exactly what a crash leaves behind) resumes from its
/// checkpoints only — and the final body is byte-identical to an
/// uninterrupted run, at more than one thread count.
#[test]
fn interrupted_run_resumes_bit_exactly() {
    let spec = smoke_spec();
    let spec_json = spec.to_json().expect("spec serializes");
    let key = spec_key(&spec);
    let groups = spec.num_groups();
    assert!(groups >= 2, "need a resumable tail");
    let reference = campaign_to_json(&run_campaign_with_threads(&spec, 1).expect("valid spec"));

    for threads in [1usize, 4] {
        let dir = scratch_dir(&format!("resume_t{threads}"));
        // Crash state: spec + running record + WAL holding only the
        // first group.
        let store = Store::open(&dir).expect("open store");
        let mut wal = store
            .begin_run(key, &spec.id, &spec_json, groups)
            .expect("begin run");
        wal.append(rendered_group(&spec, 0).expect("group 0").as_bytes())
            .expect("append");
        drop(wal);
        drop(store);

        let addr = spawn_server(ServeConfig {
            threads,
            data_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        let res = post_campaign(addr, &spec_json);
        assert_eq!(res.status, "HTTP/1.1 200 OK", "{}", res.body);
        assert_eq!(
            res.header("X-Campaign-Run"),
            Some("resumed"),
            "recovery must demote the running record to resumable"
        );
        assert_eq!(
            res.body, reference,
            "resumed body diverges from an uninterrupted run at {threads} thread(s)"
        );
        // And the now-completed run replays on the same server.
        let replay = get_campaign(addr, key);
        assert_eq!(replay.header("X-Campaign-Run"), Some("existing"));
        assert_eq!(replay.body, reference);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A client hanging up right after submitting must not discard durable
/// state: the spec/record/WAL files stay, and a retry converges on the
/// exact uninterrupted bytes.
#[test]
fn client_hangup_keeps_durable_checkpoints() {
    let dir = scratch_dir("hangup");
    let spec = smoke_spec();
    let spec_json = spec.to_json().expect("spec serializes");
    let key = spec_key(&spec);
    let reference = campaign_to_json(&run_campaign_with_threads(&spec, 1).expect("valid spec"));

    let addr = spawn_server(ServeConfig {
        threads: 1,
        data_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });

    // Submit and hang up immediately, without reading the response.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                format!(
                    "POST /campaigns HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\n\
                     Connection: close\r\n\r\n{spec_json}",
                    spec_json.len()
                )
                .as_bytes(),
            )
            .expect("send request");
    } // dropped: RST on anything the server streams from here

    // The retry waits out the interrupted run (claim protocol) and gets
    // the full, exact body — new, resumed, or replayed depending on how
    // far the first run got before noticing the hangup.
    let retry = post_campaign(addr, &spec_json);
    assert_eq!(retry.status, "HTTP/1.1 200 OK", "{}", retry.body);
    assert_eq!(retry.body, reference);

    // Durable state survived the hangup (whatever the interleaving).
    let store = Store::open(&dir).expect("open store");
    assert!(store.wal_path(key).exists(), "WAL discarded on hangup");
    assert_eq!(store.load_spec(key).expect("spec persisted"), spec_json);

    // After the retry, a restart recovers a completed run.
    thread::sleep(Duration::from_millis(50)); // let the server settle the slot
    let addr2 = spawn_server(ServeConfig {
        threads: 1,
        data_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let replay = get_campaign(addr2, key);
    assert_eq!(replay.status, "HTTP/1.1 200 OK", "{}", replay.body);
    assert_eq!(replay.body, reference);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Overflowing the bounded ingress queue sheds load with a 503 that
/// tells the client when to retry.
#[test]
fn overflow_answers_503_with_retry_after() {
    let addr = spawn_server(ServeConfig {
        threads: 1,
        queue: 1,
        handlers: 1,
        ..ServeConfig::default()
    });

    // Occupy the single handler with a connection that never sends its
    // request, then fill the one-deep queue with a second idle one.
    let hold_handler = TcpStream::connect(addr).expect("connect");
    thread::sleep(Duration::from_millis(100));
    let fill_queue = TcpStream::connect(addr).expect("connect");
    thread::sleep(Duration::from_millis(100));

    let res = request(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(
        res.status, "HTTP/1.1 503 Service Unavailable",
        "{}",
        res.body
    );
    assert_eq!(res.header("Retry-After"), Some("1"));
    assert!(res.body.contains("queue full"), "{}", res.body);

    drop(hold_handler);
    drop(fill_queue);
}
