//! Full-pipeline integration tests: generate → schedule → validate →
//! bound → simulate, across algorithms, ε values, platform shapes and
//! workload families.

use ftsched::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn algorithms() -> [Algorithm; 7] {
    Algorithm::ALL
}

#[test]
fn random_instances_full_pipeline() {
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = paper_instance(&mut rng, &PaperInstanceConfig::default());
        for eps in [0usize, 1, 3] {
            for alg in algorithms() {
                let mut tie = StdRng::seed_from_u64(seed * 7 + eps as u64);
                let sched = schedule(&inst, eps, alg, &mut tie)
                    .unwrap_or_else(|e| panic!("{alg:?} eps={eps}: {e}"));
                validate(&inst, &sched).unwrap_or_else(|e| panic!("{alg:?} eps={eps}: {e}"));
                assert!(sched.latency_lower_bound() >= critical_path_bound(&inst) - 1e-6);
                assert!(sched.latency_lower_bound() <= sched.latency_upper_bound() + 1e-6);
                let sim = simulate(&inst, &sched, &FailureScenario::none());
                assert!(sim.completed());
                assert!(sim.latency <= sched.latency_lower_bound() + 1e-6);
            }
        }
    }
}

#[test]
fn structured_workloads_schedule_and_survive() {
    let mut rng0 = StdRng::seed_from_u64(0x5EED);
    let workloads: Vec<(&str, Dag)> = vec![
        ("gauss", gaussian_elimination(8, 5.0, 1.0)),
        ("fft", fft(16, 10.0, 20.0)),
        ("stencil", stencil_1d(10, 6, 8.0, 12.0)),
        ("wavefront", wavefront(6, 6, 10.0, 15.0)),
        ("mapreduce", map_reduce(6, 4, 20.0, 30.0, 10.0)),
        ("cholesky", cholesky(5, 9.0, 10.0)),
        (
            "series-parallel",
            series_parallel(&mut rng0, &SeriesParallelConfig::new(40)),
        ),
    ];
    for (name, dag) in workloads {
        let mut rng = StdRng::seed_from_u64(0xABCD);
        let m = 8usize;
        let platform = random_platform(&mut rng, m, 0.5, 1.0);
        let exec = ExecutionMatrix::unrelated_with_procs(&dag, m, &mut rng, 0.4);
        let inst = Instance::new(dag, platform, exec);
        for alg in [Algorithm::Ftsa, Algorithm::McFtsaGreedy] {
            let sched =
                schedule(&inst, 2, alg, &mut rng).unwrap_or_else(|e| panic!("{name}/{alg:?}: {e}"));
            validate(&inst, &sched).unwrap_or_else(|e| panic!("{name}/{alg:?}: {e}"));
            // Two failures, drawn adversarially as the two most-loaded
            // processors.
            let mut load = vec![0usize; m];
            for t in inst.dag.tasks() {
                for r in sched.replicas_of(t) {
                    load[r.proc.index()] += 1;
                }
            }
            let mut by_load: Vec<usize> = (0..m).collect();
            by_load.sort_by_key(|&p| std::cmp::Reverse(load[p]));
            let scen =
                FailureScenario::at_time_zero(by_load[..2].iter().map(|&p| ProcId(p as u32)));
            let sim = simulate(&inst, &sched, &scen);
            assert!(sim.completed(), "{name}/{alg:?} lost a task");
        }
    }
}

#[test]
fn single_processor_fault_free_only() {
    let dag = stencil_1d(4, 3, 5.0, 5.0);
    let platform = Platform::uniform_delay(1, 0.0);
    let exec = ExecutionMatrix::consistent(&dag, &[1.0]);
    let inst = Instance::new(dag, platform, exec);
    let mut rng = StdRng::seed_from_u64(1);
    // ε = 0 works; ε = 1 must be rejected.
    let s = schedule(&inst, 0, Algorithm::Ftsa, &mut rng).unwrap();
    // Serial execution: latency = total work.
    assert!((s.latency_lower_bound() - inst.dag.total_work()).abs() < 1e-9);
    assert!(matches!(
        schedule(&inst, 1, Algorithm::Ftsa, &mut rng),
        Err(ScheduleError::NotEnoughProcessors { .. })
    ));
}

#[test]
fn epsilon_covers_entire_platform() {
    // ε = m − 1: every task replicated on every processor.
    let mut rng = StdRng::seed_from_u64(5);
    let inst = paper_instance(
        &mut rng,
        &PaperInstanceConfig {
            tasks_lo: 40,
            tasks_hi: 40,
            procs: 4,
            ..Default::default()
        },
    );
    let sched = schedule(&inst, 3, Algorithm::Ftsa, &mut rng).unwrap();
    validate(&inst, &sched).unwrap();
    for t in inst.dag.tasks() {
        assert_eq!(sched.replicas_of(t).len(), 4);
    }
    // Any 3 processors may fail; the remaining one carries the run.
    for keep in 0..4u32 {
        let scen = FailureScenario::at_time_zero((0..4u32).filter(|&p| p != keep).map(ProcId));
        let sim = simulate(&inst, &sched, &scen);
        assert!(sim.completed());
    }
}

#[test]
fn message_economy_headline() {
    // The Section 4.2 claim: FTSA ships up to e(ε+1)² messages, MC-FTSA
    // exactly e(ε+1) minus intra-processor deliveries.
    let mut rng = StdRng::seed_from_u64(6);
    let inst = paper_instance(&mut rng, &PaperInstanceConfig::default());
    let e = inst.dag.num_edges();
    for eps in [1usize, 2, 4] {
        let mut tie = StdRng::seed_from_u64(eps as u64);
        let f = schedule(&inst, eps, Algorithm::Ftsa, &mut tie).unwrap();
        let m = schedule(&inst, eps, Algorithm::McFtsaGreedy, &mut tie).unwrap();
        let (max_full, max_mc) = ftsched::core::bounds::max_messages(e, eps);
        assert!(f.message_count(&inst.dag) <= max_full);
        assert!(m.message_count(&inst.dag) <= max_mc);
        assert!(
            (m.message_count(&inst.dag) as f64) < 0.8 * f.message_count(&inst.dag) as f64,
            "MC must ship substantially fewer messages (eps={eps})"
        );
    }
}
