//! Serialization integration tests: graphs, platforms, schedules and
//! failure scenarios must round-trip through JSON so experiments can be
//! archived and replayed.

use ftsched::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn schedule_round_trips_through_json() {
    let mut rng = StdRng::seed_from_u64(11);
    let inst = paper_instance(&mut rng, &PaperInstanceConfig::default());
    let sched = schedule(&inst, 2, Algorithm::McFtsaGreedy, &mut rng).unwrap();

    let json = serde_json::to_string(&sched).unwrap();
    let back: Schedule = serde_json::from_str(&json).unwrap();
    assert_eq!(back.epsilon, sched.epsilon);
    // `Schedule` equality is logical content: per-task replica slices,
    // per-processor placement order, comm table and schedule order —
    // independent of the arena layout the JSON was built from.
    assert_eq!(back, sched);
    assert_eq!(back.comm, sched.comm);

    // The deserialized schedule still validates and simulates.
    validate(&inst, &back).unwrap();
    let sim = simulate(&inst, &back, &FailureScenario::none());
    assert!(sim.completed());
}

#[test]
fn instance_components_round_trip() {
    let mut rng = StdRng::seed_from_u64(12);
    let inst = paper_instance(&mut rng, &PaperInstanceConfig::default());

    let dag_json = taskgraph::io::to_json(&inst.dag).unwrap();
    let dag2 = taskgraph::io::from_json(&dag_json).unwrap();
    assert_eq!(dag2.num_tasks(), inst.dag.num_tasks());

    let plat_json = serde_json::to_string(&inst.platform).unwrap();
    let plat2: Platform = serde_json::from_str(&plat_json).unwrap();
    assert_eq!(plat2.num_procs(), inst.platform.num_procs());
    assert_eq!(plat2.delay(0, 1), inst.platform.delay(0, 1));

    let exec_json = serde_json::to_string(&inst.exec).unwrap();
    let exec2: ExecutionMatrix = serde_json::from_str(&exec_json).unwrap();
    assert_eq!(exec2.time(0, 0), inst.exec.time(0, 0));

    // Rebuild an instance from the parts and schedule it identically.
    let rebuilt = Instance::new(dag2, plat2, exec2);
    let a = schedule(&inst, 1, Algorithm::Ftsa, &mut StdRng::seed_from_u64(5)).unwrap();
    let b = schedule(&rebuilt, 1, Algorithm::Ftsa, &mut StdRng::seed_from_u64(5)).unwrap();
    assert_eq!(a, b);
}

#[test]
fn failure_scenarios_round_trip() {
    let scen = FailureScenario::new(vec![(ProcId(3), 0.0), (ProcId(7), 12.5)]);
    let json = serde_json::to_string(&scen).unwrap();
    let back: FailureScenario = serde_json::from_str(&json).unwrap();
    assert_eq!(back, scen);
    assert_eq!(back.failure_time(ProcId(7)), Some(12.5));
}

#[test]
fn dot_export_of_workloads() {
    let dag = gaussian_elimination(5, 1.0, 1.0);
    let dot = taskgraph::io::to_dot(&dag);
    assert!(dot.contains("digraph"));
    assert!(dot.contains("pivot(0)"));
    assert!(dot.matches("->").count() >= dag.num_edges());
}
