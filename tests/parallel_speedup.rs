//! Wall-clock speedup of the figure sweep at 4 threads over 1 thread.
//!
//! This lives in its own test binary on purpose: cargo runs test
//! binaries one at a time, so no sibling test competes for cores while
//! the sweep is being timed. The speedup is only *asserted* where at
//! least 4 cores exist (CI runners); on smaller machines the measurement
//! is reported and the assertion skipped. Each thread count takes the
//! minimum of three runs — the minimum is the noise-robust estimator for
//! "how fast can this go".

use experiments::figures::{run_figure_with_threads, FigureConfig};

#[test]
fn figure_sweep_speedup_at_four_threads() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cfg = FigureConfig {
        granularities: vec![0.4, 0.8, 1.2, 1.6],
        repetitions: 8,
        ..FigureConfig::comparison("speedup", 1, 8)
    };
    // Warm-up run so page faults and lazy init don't skew the baseline.
    let warm = run_figure_with_threads(&cfg, 4).unwrap();
    assert_eq!(warm.points.len(), 4);

    let time = |threads: usize| {
        (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                let fig = run_figure_with_threads(&cfg, threads).unwrap();
                assert_eq!(fig.points.len(), 4);
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let t1 = time(1);
    let t4 = time(4);
    let speedup = t1 / t4;
    eprintln!(
        "figure sweep: {t1:.3}s at 1 thread, {t4:.3}s at 4 threads \
         (speedup {speedup:.2}x, {cores} cores)"
    );
    if cores >= 4 {
        assert!(
            speedup > 1.5,
            "expected >1.5x speedup at 4 threads on {cores} cores, measured {speedup:.2}x \
             ({t1:.3}s -> {t4:.3}s)"
        );
    } else {
        eprintln!("skipping speedup assertion: only {cores} core(s) available");
    }
}
