//! Scheduler invariants on the six structured workloads
//! (`taskgraph::workloads`): every algorithm must schedule, validate and
//! survive ε crashes on the fork–join / stencil / butterfly shapes —
//! not just on the paper's random layered graphs. Before the campaign
//! refactor only examples and the CLI touched these kernels, so no
//! scheduler invariant was checked on them at all.

use ftsched::prelude::*;
use ftsched::taskgraph::{workloads, Dag};
use rand::{rngs::StdRng, SeedableRng};

/// The six kernels at small sizes, with their names for diagnostics.
fn kernels() -> Vec<(&'static str, Dag)> {
    vec![
        ("cholesky", workloads::cholesky(4, 10.0, 5.0)),
        ("fft", workloads::fft(8, 10.0, 20.0)),
        (
            "gaussian_elimination",
            workloads::gaussian_elimination(5, 10.0, 1.0),
        ),
        ("stencil_1d", workloads::stencil_1d(4, 4, 10.0, 15.0)),
        ("map_reduce", workloads::map_reduce(5, 3, 20.0, 30.0, 10.0)),
        ("wavefront", workloads::wavefront(4, 4, 10.0, 15.0)),
    ]
}

fn instance_for(dag: Dag, procs: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let platform = random_platform(&mut rng, procs, 0.5, 1.0);
    let exec = ExecutionMatrix::unrelated_with_procs(&dag, procs, &mut rng, 0.5);
    Instance::new(dag, platform, exec)
}

#[test]
fn every_algorithm_schedules_every_kernel_and_survives_crashes() {
    let eps = 2;
    let procs = 6;
    for (name, dag) in kernels() {
        let inst = instance_for(dag, procs, 0x5u64.wrapping_add(name.len() as u64));
        for alg in Algorithm::ALL {
            let mut rng = StdRng::seed_from_u64(11);
            let sched = schedule(&inst, eps, alg, &mut rng)
                .unwrap_or_else(|e| panic!("{alg:?} failed on {name}: {e}"));
            validate(&inst, &sched).unwrap_or_else(|e| panic!("{alg:?} invalid on {name}: {e}"));

            // Theorem 4.1: ε + 1 replicas per task on distinct processors.
            for t in inst.dag.tasks() {
                let primaries = &sched.replicas_of(t)[..eps + 1];
                let distinct: std::collections::HashSet<_> =
                    primaries.iter().map(|r| r.proc).collect();
                assert_eq!(
                    distinct.len(),
                    eps + 1,
                    "{alg:?} on {name}: clustered replicas for {t}"
                );
            }
            assert!(sched.latency_lower_bound() <= sched.latency_upper_bound() + 1e-9);

            // Crash survival under exactly ε uniform failures.
            let mut frng = StdRng::seed_from_u64(23);
            let scen = FailureScenario::uniform(&mut frng, inst.num_procs(), eps);
            let sim = simulate(&inst, &sched, &scen);
            assert!(sim.completed(), "{alg:?} on {name}: lost a task");
            // The eq. (3)/(4) `L ≤ M` guarantee is specific to all-to-all
            // first-arrival semantics (matched re-routing can pay a
            // slower surviving sender than the bound's pessimistic
            // all-to-all fold) — same scoping as the simulator's own
            // Proposition 4.2 suite.
            if alg.scheduler().comm == CommAxis::AllToAll {
                assert!(
                    sim.latency <= sched.latency_upper_bound() + 1e-6,
                    "{alg:?} on {name}: crash latency {} above upper bound {}",
                    sim.latency,
                    sched.latency_upper_bound()
                );
            }
        }
    }
}

#[test]
fn fault_free_simulation_matches_lower_bound_on_kernels() {
    // On all-to-all FTSA schedules the no-failure replay equals M*
    // exactly — also on the structured shapes, whose wide fork-joins
    // stress different engine paths than layered graphs.
    for (name, dag) in kernels() {
        let inst = instance_for(dag, 5, 77);
        for eps in [0usize, 1] {
            let mut rng = StdRng::seed_from_u64(3);
            let sched = schedule(&inst, eps, Algorithm::Ftsa, &mut rng).unwrap();
            let sim = simulate(&inst, &sched, &FailureScenario::none());
            assert!(
                (sim.latency - sched.latency_lower_bound()).abs() < 1e-9,
                "{name} eps={eps}: {} vs {}",
                sim.latency,
                sched.latency_lower_bound()
            );
        }
    }
}

#[test]
fn structured_campaign_axis_covers_all_kernels() {
    // The campaign workload axis exposes every kernel; a one-rep grid
    // over all six must run end to end with finite, crash-surviving
    // results.
    use experiments::campaign::{
        run_campaign_with_threads, CampaignSpec, MeasurePlan, PlatformSpec, Seeding,
        StructuredKernel, StructuredWorkload, WorkloadSpec,
    };
    let spec = CampaignSpec {
        id: "kernels".into(),
        workloads: StructuredKernel::ALL
            .into_iter()
            .map(|kernel| WorkloadSpec::Structured(StructuredWorkload { kernel, size: 4 }))
            .collect(),
        platforms: vec![PlatformSpec::paper(5, 1.0)],
        epsilons: vec![1],
        algorithms: vec![Algorithm::Ftsa, Algorithm::McFtsaGreedy],
        extra_algorithms: vec![],
        repetitions: 2,
        seed: 99,
        seeding: Seeding::Indexed,
        arrivals: None,
        measures: MeasurePlan {
            failures: vec![ftsched::platform::FailureModel::Epsilon],
            ..Default::default()
        },
    };
    let res = run_campaign_with_threads(&spec, 2).unwrap();
    assert_eq!(res.groups.len(), StructuredKernel::ALL.len());
    for g in &res.groups {
        let crash = g.mean("FTSA with 1 Crash").unwrap();
        assert!(crash.is_finite() && crash > 0.0, "{}", g.workload);
        assert!(g.mean("MC-FTSA with 1 Crash").unwrap().is_finite());
    }
}
